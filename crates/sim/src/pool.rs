//! The persistent worker pool behind [`fan_out`](crate::runner::fan_out).
//!
//! The previous implementation spawned fresh scoped threads on every call.
//! For long simulations that cost is noise, but sweep grids run *many small
//! cells* (`SweepGrid` with tiny per-cell runs, `--replications` over short
//! seeds), where per-call thread startup — stack allocation, kernel
//! scheduling, TLS setup — dominates. This module keeps one process-wide set
//! of parked workers alive across calls: posting a job is a mutex push plus
//! a condvar broadcast, and an idle pool costs nothing but parked threads.
//!
//! # Execution model
//!
//! A *job* is `count` independent indices plus a type-erased closure to run
//! on each. Indices are claimed work-stealing style from a single atomic
//! counter (the same contract the scoped implementation had), the **caller
//! participates** (so `fan_out` never deadlocks even if every pool worker is
//! busy elsewhere), and completion is tracked by a countdown the last
//! finisher signals. Results ride the caller's own buffers, so outputs come
//! back in input order regardless of which thread ran what — pooled
//! execution is bit-identical to sequential execution, asserted by the
//! runner tests against [`fan_out_scoped`](crate::runner::fan_out_scoped).
//!
//! Multiple jobs may be live at once (concurrent tests, nested fan-outs):
//! workers scan the active-job list and help whichever job still has
//! unclaimed indices — bounded per job by its `threads - 1` helper cap, so
//! a call asking for few threads is never drained by the larger worker set
//! an earlier, wider call left parked.
//!
//! # Safety
//!
//! This is the one module in the workspace that needs `unsafe`: pool workers
//! are `'static`, but the job closure borrows the caller's stack frame
//! (factories, configs, result slots). The lifetime is erased through a raw
//! pointer and re-asserted under this invariant:
//!
//! > The posting frame does not return before every claimed index has
//! > finished running, and an index can only be claimed while `claimed <
//! > count`.
//!
//! Concretely: `run_on_pool` blocks on the job's completion latch, and the
//! latch opens only after all `count` indices have run to completion. A
//! straggler worker that still holds the job after that can only observe
//! `claimed >= count` and therefore never dereferences the closure again.
//! The shared bookkeeping (`JobCore`) is reference-counted, so stragglers
//! touching the *counters* after completion touch live heap memory, never
//! the dead frame.

#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on pool workers — far above any sensible `threads` request, but
/// it bounds the damage of a caller passing e.g. `usize::MAX`.
const MAX_WORKERS: usize = 512;

/// Shared bookkeeping of one posted job. Heap-allocated and reference
/// counted so that late workers can inspect the counters safely after the
/// posting frame returned; only `task` points into the (then dead) frame,
/// and the invariant above keeps it from being dereferenced late.
struct JobCore {
    /// Type-erased pointer to the caller's closure.
    task: *const (),
    /// Monomorphized trampoline re-asserting the closure's type.
    call: unsafe fn(*const (), usize),
    /// Total number of indices.
    count: usize,
    /// Next index to claim (work-stealing counter).
    next: AtomicUsize,
    /// Indices not yet finished; the worker taking this to zero opens the
    /// completion latch.
    pending: AtomicUsize,
    /// Maximum pool workers allowed to attach (`threads - 1`; the posting
    /// caller participates on top of this). Enforces the per-call `threads`
    /// contract even when the pool holds more parked workers from earlier,
    /// wider calls.
    helper_cap: usize,
    /// Pool workers currently attached. Reserved under the jobs lock in
    /// `worker_loop` (so reservations cannot race past the cap), released
    /// after the worker's drain returns — which only happens once every
    /// index is claimed, so a released slot can never re-admit a helper.
    helpers: AtomicUsize,
    /// Set when any index's closure panicked (re-raised by the caller).
    panicked: AtomicBool,
    /// Completion latch.
    done: Mutex<bool>,
    done_signal: Condvar,
}

// SAFETY: `task` is only dereferenced through `call` while the posting frame
// is provably alive (see the module docs); everything else is Sync already.
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

/// State shared by all pool workers.
struct PoolShared {
    /// Jobs with (potentially) unclaimed indices. Posted by callers, removed
    /// by the posting caller when its job completes.
    jobs: Mutex<Vec<Arc<JobCore>>>,
    /// Signalled when a job is posted.
    work_available: Condvar,
}

/// The process-wide pool: shared state plus the lazily-grown worker count.
struct WorkerPool {
    shared: Arc<PoolShared>,
    spawned: Mutex<usize>,
}

static POOL: OnceLock<WorkerPool> = OnceLock::new();

impl WorkerPool {
    fn new() -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                jobs: Mutex::new(Vec::new()),
                work_available: Condvar::new(),
            }),
            spawned: Mutex::new(0),
        }
    }

    /// Grows the pool to at least `wanted` workers (capped). Workers are
    /// never torn down; parked threads are cheap and the pool lives for the
    /// process.
    fn ensure_workers(&self, wanted: usize) {
        let wanted = wanted.min(MAX_WORKERS);
        let mut spawned = self.spawned.lock().expect("no poisoned locks");
        while *spawned < wanted {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("scd-fanout-{spawned}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawning a pool worker succeeds");
            *spawned += 1;
        }
    }
}

/// A pool worker: park until some job has unclaimed indices, help drain it,
/// repeat forever.
fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut jobs = shared.jobs.lock().expect("no poisoned locks");
            loop {
                let open = jobs.iter().find(|job| {
                    job.next.load(Ordering::Relaxed) < job.count
                        && job.helpers.load(Ordering::Relaxed) < job.helper_cap
                });
                if let Some(job) = open {
                    // Reserve a helper slot; the jobs lock is held, so
                    // concurrent workers cannot race past the cap.
                    job.helpers.fetch_add(1, Ordering::Relaxed);
                    break Arc::clone(job);
                }
                jobs = shared.work_available.wait(jobs).expect("no poisoned locks");
            }
        };
        drain_job(&job);
        job.helpers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Claims and runs indices of one job until none are left. Run by pool
/// workers and by the posting caller alike.
fn drain_job(job: &JobCore) {
    loop {
        let index = job.next.fetch_add(1, Ordering::Relaxed);
        if index >= job.count {
            return;
        }
        // SAFETY: `index < count` implies the completion latch has not
        // opened, so the posting frame (and with it `task`) is still alive —
        // the module-level invariant.
        let run = || unsafe { (job.call)(job.task, index) };
        if catch_unwind(AssertUnwindSafe(run)).is_err() {
            // Matches the scoped-thread semantics: remaining indices still
            // run (other threads kept working there too) and the caller
            // re-raises after completion.
            job.panicked.store(true, Ordering::Relaxed);
        }
        if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = job.done.lock().expect("no poisoned locks");
            *done = true;
            job.done_signal.notify_all();
        }
    }
}

/// Removes the posted job from the active list when the posting call exits,
/// whatever the exit path, so stale entries can never accumulate.
struct JobGuard<'a> {
    shared: &'a PoolShared,
    job: &'a Arc<JobCore>,
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        let mut jobs = self.shared.jobs.lock().expect("no poisoned locks");
        jobs.retain(|job| !Arc::ptr_eq(job, self.job));
    }
}

/// Monomorphized trampoline: recover the closure type and run one index.
unsafe fn call_erased<C: Fn(usize) + Sync>(task: *const (), index: usize) {
    let task = unsafe { &*task.cast::<C>() };
    task(index);
}

/// Runs `task` for every index in `0..count` on the persistent pool, using
/// the calling thread plus up to `threads - 1` pool workers, and returns
/// when every index has completed.
///
/// # Panics
/// Panics if any `task` invocation panicked (after all indices finished).
pub(crate) fn run_on_pool<C>(count: usize, threads: usize, task: &C)
where
    C: Fn(usize) + Sync,
{
    debug_assert!(count > 0 && threads > 1, "callers pre-filter trivial jobs");
    let pool = POOL.get_or_init(WorkerPool::new);
    pool.ensure_workers(threads.min(count).saturating_sub(1));

    let job = Arc::new(JobCore {
        task: (task as *const C).cast::<()>(),
        call: call_erased::<C>,
        count,
        next: AtomicUsize::new(0),
        pending: AtomicUsize::new(count),
        helper_cap: threads.min(count).saturating_sub(1),
        helpers: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        done: Mutex::new(false),
        done_signal: Condvar::new(),
    });
    {
        let mut jobs = pool.shared.jobs.lock().expect("no poisoned locks");
        jobs.push(Arc::clone(&job));
    }
    // Wake only as many workers as this job can use — a broadcast would
    // rouse every parked worker just for most to find the helper cap taken
    // and re-park. A wakeup that finds no waiter (worker busy elsewhere) is
    // not lost: workers re-scan the job list before parking again.
    for _ in 0..job.helper_cap {
        pool.shared.work_available.notify_one();
    }
    let _guard = JobGuard {
        shared: &pool.shared,
        job: &job,
    };

    // Participate, then wait for helpers still running claimed indices. A
    // short spin-then-yield first: for the small jobs the pool exists for,
    // the trailing index usually finishes within microseconds of the
    // caller's drain, and sleeping on the latch would pay a full scheduler
    // wake-up. The spin is kept tiny and followed by `yield_now` so that on
    // saturated (or single-core) machines the caller hands the CPU to the
    // helpers instead of burning it; only then does it park on the latch.
    drain_job(&job);
    let mut attempts = 0u32;
    while job.pending.load(Ordering::Acquire) != 0 {
        attempts += 1;
        if attempts <= 100 {
            std::hint::spin_loop();
        } else if attempts <= 120 {
            std::thread::yield_now();
        } else {
            let mut done = job.done.lock().expect("no poisoned locks");
            while !*done {
                done = job.done_signal.wait(done).expect("no poisoned locks");
            }
            break;
        }
    }
    drop(_guard);

    if job.panicked.load(Ordering::Relaxed) {
        panic!("a fan_out worker panicked; see the captured panic output above");
    }
}
