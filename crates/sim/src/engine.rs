//! The three-phase round engine (Section 2 of the paper).

use crate::checkpoint::{
    DecisionState, EngineCheckpoint, HistogramState, ScenarioState, TrackerState,
};
use crate::config::SimConfig;
use crate::queues::SegmentQueue;
use crate::report::{DegradationMetrics, QueueSummary, SimReport};
use crate::scenario::StalenessSpec;
use crate::trace::RunTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scd_metrics::{DecisionTimeHistogram, QueueLengthTracker, ResponseTimeHistogram};
use scd_model::{
    policy::validate_assignment, Availability, CacheDemand, DegradedView, DispatchContext,
    DispatcherId, ModelError, PolicyFactory, ProbeLossOracle, RoundCache, ServerId,
};
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Errors produced when configuring or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration is internally inconsistent.
    InvalidConfig(String),
    /// A policy returned an invalid assignment (wrong arity or unknown
    /// server).
    PolicyViolation {
        /// Name of the offending policy.
        policy: String,
        /// The dispatcher that produced the bad assignment.
        dispatcher: usize,
        /// The underlying validation error.
        source: ModelError,
    },
    /// An I/O failure talking to a process-fabric worker (spawn, stdin
    /// hand-off, pipe read, wait). Carries the worker's process id (0 when
    /// the process never spawned) and the shard it was running, so a fleet
    /// log line identifies the exact worker.
    Io {
        /// OS process id of the worker, or 0 if spawning itself failed.
        worker: u32,
        /// The shard the worker was assigned.
        shard: usize,
        /// Human-readable cause (the underlying `std::io::Error` text).
        cause: String,
    },
    /// A process-fabric frame failed to decode (truncated, bad checksum,
    /// wrong version, malformed payload).
    Codec {
        /// The shard whose frame was rejected.
        shard: usize,
        /// The typed codec failure.
        cause: crate::fabric::CodecError,
    },
    /// Shard reports disagree on run identity (shard count, config digest,
    /// policy or round clock) and were refused by the merge — merging
    /// reports of different runs would silently produce nonsense statistics.
    MergeMismatch(String),
    /// A checkpoint could not be captured or restored: the requested
    /// round is out of range, the checkpoint was taken under a different
    /// configuration (digest mismatch), its shape disagrees with the
    /// resuming run, or a policy rejected its state blob.
    Checkpoint(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation configuration: {msg}"),
            SimError::PolicyViolation {
                policy,
                dispatcher,
                source,
            } => write!(
                f,
                "policy {policy} misbehaved at dispatcher {dispatcher}: {source}"
            ),
            SimError::Io {
                worker,
                shard,
                cause,
            } => write!(f, "worker {worker} (shard {shard}) I/O failure: {cause}"),
            SimError::Codec { shard, cause } => {
                write!(f, "shard {shard} report frame rejected: {cause}")
            }
            SimError::MergeMismatch(msg) => write!(f, "refusing to merge shard reports: {msg}"),
            SimError::Checkpoint(msg) => write!(f, "checkpoint rejected: {msg}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidConfig(_) => None,
            SimError::PolicyViolation { source, .. } => Some(source),
            SimError::Io { .. } => None,
            SimError::Codec { cause, .. } => Some(cause),
            SimError::MergeMismatch(_) => None,
            SimError::Checkpoint(_) => None,
        }
    }
}

/// How (and whether) the round loop emits checkpoints: capture one every
/// `every` rounds (0 = never), and — for
/// [`Simulation::checkpoint`] — stop the run right after capturing at
/// `stop_at`. Each capture is handed to `sink`, whose error aborts the run.
struct CheckpointPlan<'a> {
    every: u64,
    stop_at: Option<u64>,
    sink: &'a mut dyn FnMut(EngineCheckpoint) -> Result<(), SimError>,
}

// Seed-stream separation: each stochastic stream of the run is seeded from
// the master seed and a distinct tag (plus a per-dispatcher index for the
// policy streams), so that the arrival and departure processes are identical
// across policies while policy-internal randomness stays independent per
// dispatcher. The derivation lives in `scd_model::streams` so the sharded
// engine ([`crate::shard`]) can derive per-shard sub-masters with the same
// splitmix64 scheme.
use scd_model::streams::{
    counter_draw, derive_stream_seed, unit_f64, ARRIVAL_STREAM_TAG, FAULT_STREAM_TAG,
    POLICY_STREAM_TAG, PROBE_LOSS_STREAM_TAG, SERVICE_STREAM_TAG, STALENESS_STREAM_TAG,
};

/// Per-round scenario state needed to build a **per-dispatcher** context:
/// under an active scenario dispatchers may look at different (stale) queue
/// views, so the single shared context of the fair-weather path is replaced
/// by one built on demand per dispatcher. Availability and probe loss are
/// always current — only the queue-length view goes stale (failure
/// detection is modelled as out-of-band).
struct ScenarioRound<'a> {
    rates: &'a [f64],
    snapshot: &'a [u64],
    /// Ring buffer of the last `ring.len()` snapshots (indexed by
    /// `round % ring.len()`), present only when staleness is possible.
    ring: Option<&'a [Vec<u64>]>,
    /// Per-dispatcher effective view age for this round (already clamped to
    /// `round`, so the ring lookup never reaches before round 0).
    k_effs: &'a [u64],
    /// Whether each dispatcher's *previous* round view was stale — a
    /// dispatcher returning to a fresh view must not trust the one-round
    /// dirty diff, since its own last-seen view was older.
    stale_prev: &'a [bool],
    /// This round's dirty set, attachable only to fresh-view dispatchers.
    dirty: Option<&'a [u32]>,
    /// The shared per-round cache, refreshed from this round's *fresh*
    /// snapshot — attachable only to dispatchers whose effective view *is*
    /// that snapshot (`k_eff == 0`). Stale-view dispatchers must not see
    /// solver tables computed against a state they do not observe.
    cache: Option<&'a RoundCache>,
    avail: &'a Availability,
    oracle: Option<&'a ProbeLossOracle>,
    m: usize,
    round: u64,
}

impl<'a> ScenarioRound<'a> {
    /// The context dispatcher `d` dispatches with this round.
    fn ctx(&self, d: usize) -> DispatchContext<'a> {
        let k_eff = self.k_effs[d];
        let view: &'a [u64] = if k_eff == 0 {
            self.snapshot
        } else {
            let ring = self
                .ring
                .expect("a snapshot ring exists whenever staleness is possible");
            &ring[((self.round - k_eff) as usize) % ring.len()]
        };
        // `ctx.round()` stays the *current* round even for stale views:
        // policies time-stamp their internal state with it, and the view age
        // is an information defect, not time travel.
        let ctx = match self.cache {
            // Fresh view: the shared cache describes exactly this snapshot,
            // so cache-backed dispatch kernels stay bit-identical to the
            // fair-weather path (the `k = 0` scenario equivalence test pins
            // this). Masked rounds bypass the cache inside the policies.
            Some(cache) if k_eff == 0 => {
                DispatchContext::with_cache(self.snapshot, self.rates, self.m, self.round, cache)
            }
            _ => DispatchContext::new(view, self.rates, self.m, self.round),
        }
        .with_degraded(DegradedView::new(self.avail, self.oracle, d));
        match self.dirty {
            Some(dirty) if k_eff == 0 && !self.stale_prev[d] => ctx.with_dirty(dirty),
            _ => ctx,
        }
    }
}

/// A configured simulation, ready to run any number of policies on identical
/// stochastic inputs.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimConfig,
    /// Whether the round loop tracks round-to-round dirty sets and hands
    /// them to policies/caches (see [`Simulation::with_delta_rounds`]).
    delta_rounds: bool,
}

impl Simulation {
    /// Validates the configuration and creates the simulation.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] for degenerate configurations
    /// (zero dispatchers, zero rounds, warm-up at least as long as the run).
    pub fn new(config: SimConfig) -> Result<Self, SimError> {
        if config.num_dispatchers == 0 {
            return Err(SimError::InvalidConfig(
                "the system must contain at least one dispatcher".into(),
            ));
        }
        if config.rounds == 0 {
            return Err(SimError::InvalidConfig(
                "the simulation must run for at least one round".into(),
            ));
        }
        if config.warmup_rounds >= config.rounds {
            return Err(SimError::InvalidConfig(format!(
                "warm-up ({}) must be shorter than the run ({})",
                config.warmup_rounds, config.rounds
            )));
        }
        config
            .scenario
            .validate(config.spec.num_servers(), config.num_dispatchers)?;
        config.validate_scale()?;
        config.arrivals.validate(config.num_dispatchers)?;
        config.workload.validate(
            &config.arrivals,
            config.num_dispatchers,
            config.rounds,
            config.spec.total_rate(),
        )?;
        Ok(Simulation {
            config,
            delta_rounds: true,
        })
    }

    /// The configuration this simulation runs.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Enables or disables round-to-round delta tracking (default: enabled).
    ///
    /// With deltas enabled the engine collects each round's dirty set — the
    /// dispatch targets plus the servers whose queues completed jobs — and
    /// exposes it through [`DispatchContext::dirty_servers`] and the
    /// [`RoundCache`] delta refresh, so warm per-round structures repair
    /// only what changed. The dirty set is a **pure accelerator**: reports
    /// are bit-identical for either setting (pinned by the engine
    /// equivalence tests); disabling it reconstructs the PR 4 round loop
    /// for apples-to-apples benchmarking.
    pub fn with_delta_rounds(mut self, enabled: bool) -> Self {
        self.delta_rounds = enabled;
        self
    }

    /// Runs the configured system under the given policy and collects the
    /// result.
    ///
    /// For a fixed configuration (and therefore fixed seed) the arrival and
    /// service processes are identical across calls, so reports for
    /// different policies are directly comparable (the paper's methodology).
    ///
    /// # Errors
    /// Returns [`SimError::PolicyViolation`] if the policy returns an
    /// assignment with the wrong number of destinations or an out-of-range
    /// server.
    pub fn run(&self, factory: &dyn PolicyFactory) -> Result<SimReport, SimError> {
        let report = self.run_inner(factory, None, None, None)?;
        Ok(report.expect("a run without a stop round always completes"))
    }

    /// Runs the simulation up to (but not including) `at_round` and
    /// returns the [`EngineCheckpoint`] capturing its state at that round
    /// boundary. [`resume_from`](Simulation::resume_from) on the result
    /// completes the run bit-identically to an uninterrupted
    /// [`run`](Simulation::run) (pinned by the resume tests).
    ///
    /// # Errors
    /// [`SimError::Checkpoint`] if `at_round` is 0 or past the end of the
    /// run, plus every error [`run`](Simulation::run) can produce.
    pub fn checkpoint(
        &self,
        factory: &dyn PolicyFactory,
        at_round: u64,
    ) -> Result<EngineCheckpoint, SimError> {
        if at_round == 0 || at_round >= self.config.rounds {
            return Err(SimError::Checkpoint(format!(
                "checkpoint round {at_round} outside the resumable range 1..{}",
                self.config.rounds
            )));
        }
        let mut captured = None;
        let mut sink = |ckpt: EngineCheckpoint| {
            captured = Some(ckpt);
            Ok(())
        };
        let report = self.run_inner(
            factory,
            None,
            None,
            Some(CheckpointPlan {
                every: 0,
                stop_at: Some(at_round),
                sink: &mut sink,
            }),
        )?;
        debug_assert!(report.is_none(), "the run stops at the capture round");
        captured.ok_or_else(|| {
            SimError::Checkpoint("the run ended before the requested checkpoint round".into())
        })
    }

    /// Resumes a run from a checkpoint and completes it, producing the
    /// same report an uninterrupted [`run`](Simulation::run) would have.
    ///
    /// # Errors
    /// [`SimError::Checkpoint`] if the checkpoint's config digest does not
    /// match this configuration, its shape disagrees with the cluster, or
    /// a policy rejects its state blob — plus every error
    /// [`run`](Simulation::run) can produce.
    pub fn resume_from(
        &self,
        factory: &dyn PolicyFactory,
        checkpoint: &EngineCheckpoint,
    ) -> Result<SimReport, SimError> {
        let report = self.run_inner(factory, None, Some(checkpoint), None)?;
        Ok(report.expect("a resumed run without a stop round always completes"))
    }

    /// Runs the simulation (optionally resumed from `resume`), handing a
    /// checkpoint to `sink` every `every` rounds — at rounds that are
    /// positive multiples of `every`, skipping the resume round itself
    /// (the worker just received that state; re-emitting it would be
    /// retry fuel without progress). `every == 0` captures nothing, which
    /// makes this exactly [`run`](Simulation::run) /
    /// [`resume_from`](Simulation::resume_from).
    ///
    /// # Errors
    /// Everything [`resume_from`](Simulation::resume_from) can produce,
    /// plus any error returned by `sink` (which aborts the run).
    pub fn run_with_checkpoints(
        &self,
        factory: &dyn PolicyFactory,
        every: u64,
        resume: Option<&EngineCheckpoint>,
        sink: &mut dyn FnMut(EngineCheckpoint) -> Result<(), SimError>,
    ) -> Result<SimReport, SimError> {
        let report = self.run_inner(
            factory,
            None,
            resume,
            Some(CheckpointPlan {
                every,
                stop_at: None,
                sink,
            }),
        )?;
        Ok(report.expect("a run without a stop round always completes"))
    }

    /// Like [`run`](Simulation::run), additionally recording a per-job event
    /// trace: every raw sampled arrival count (replayable bit-exactly via
    /// [`WorkloadSpec::replay`](crate::WorkloadSpec::replay)) plus
    /// arrival/dispatch/service events renderable with
    /// [`chrome_trace_json`](crate::chrome_trace_json). Tracing never
    /// perturbs the run: the report is bit-identical to
    /// [`run`](Simulation::run).
    ///
    /// # Errors
    /// Same conditions as [`run`](Simulation::run).
    pub fn run_traced(
        &self,
        factory: &dyn PolicyFactory,
    ) -> Result<(SimReport, RunTrace), SimError> {
        let mut trace = RunTrace::new(
            self.config.num_dispatchers,
            self.config.spec.num_servers(),
            self.config.rounds,
        );
        let report = self.run_inner(factory, Some(&mut trace), None, None)?;
        Ok((
            report.expect("a traced run without a stop round always completes"),
            trace,
        ))
    }

    fn run_inner(
        &self,
        factory: &dyn PolicyFactory,
        mut trace: Option<&mut RunTrace>,
        resume: Option<&EngineCheckpoint>,
        mut checkpoints: Option<CheckpointPlan<'_>>,
    ) -> Result<Option<SimReport>, SimError> {
        let config = &self.config;
        let spec = &config.spec;
        let n = spec.num_servers();
        let m = config.num_dispatchers;
        let rates = spec.rates();

        // Independent RNG streams (see `derive_stream_seed` above).
        let mut arrival_rng =
            StdRng::seed_from_u64(derive_stream_seed(config.seed, ARRIVAL_STREAM_TAG, 0));
        let mut service_rng =
            StdRng::seed_from_u64(derive_stream_seed(config.seed, SERVICE_STREAM_TAG, 0));
        let mut policy_rngs: Vec<StdRng> = (0..m)
            .map(|d| {
                StdRng::seed_from_u64(derive_stream_seed(config.seed, POLICY_STREAM_TAG, d as u64))
            })
            .collect();

        // ---- Workload layer (crates/sim/src/workload.rs) ----
        // An inert (default) workload leaves the stationary arrival path —
        // and its RNG stream — untouched, bit for bit (the goldens in
        // `tests/engine_golden.rs` pin this). An *active* workload replaces
        // the arrival samplers entirely: the stateful `arrival_rng` is never
        // consumed, and every draw is a counter-mode pure function of the
        // workload seed, the dispatcher's **global** id and the round, so
        // sharded and unsharded runs see one global schedule.
        let wl_active = !config.workload.is_inert();
        let wl_rates: Vec<f64> = if wl_active {
            config.arrivals.per_dispatcher_rates(m, spec.total_rate())?
        } else {
            Vec::new()
        };
        let mut wl_sampler = if wl_active {
            Some(config.workload.sampler(config.seed, &wl_rates))
        } else {
            None
        };

        let arrival_processes = if wl_active {
            Vec::new()
        } else {
            config.arrivals.build(m, spec.total_rate())?
        };
        let service_processes = config.services.build(rates);

        let mut policies: Vec<_> = (0..m)
            .map(|d| factory.build(DispatcherId::new(d), spec))
            .collect();

        // Per-server FIFO queues, run-length encoded by arrival round; each
        // queue tracks its own length, so no separate length mirror exists
        // to drift out of sync.
        let mut queues: Vec<SegmentQueue> = vec![SegmentQueue::new(); n];

        // Buffers reused across rounds — after warm-up the loop below
        // performs no heap allocations.
        let mut snapshot: Vec<u64> = vec![0; n];
        let mut arrivals: Vec<u64> = Vec::with_capacity(m);
        let mut assignment: Vec<ServerId> = Vec::new();
        // Round-to-round dirty tracking (`with_delta_rounds`): `dirty` lists
        // the servers whose queue length changed between the previous
        // round's snapshot and this one's. The engine computes it **inside
        // the snapshot pass it already performs** — one compare per server
        // against the old snapshot value — so the set is exact (dispatch
        // targets ∪ servers with completions, minus no-net-change servers),
        // deduplicated, ascending, and costs one branch per server.
        let track_deltas = self.delta_rounds;
        let mut dirty: Vec<u32> = Vec::new();
        // Delta mode dispatches in ascending batch-size order (engine-known
        // before any dispatch): consecutive SCD estimates `m·a(d)` then
        // differ minimally, which is exactly what the solver's in-round
        // warm seeds want. Order is decision-invisible — each dispatcher
        // owns its RNG stream and sees the same snapshot, and same-round
        // pushes merge per server — so reports are bit-identical to the
        // `0..m` order (pinned by the delta on/off equivalence tests).
        let mut dispatch_order: Vec<u32> = (0..m as u32).collect();
        // Shared per-round compute cache: derived tables (reciprocal rates,
        // loads, solver keys) are identical across the m dispatchers of a
        // round, so the engine computes them once and hands out immutable
        // views through the context. The refresh is graded on the policies'
        // own declarations: runs that never read the cache (JSQ, WR, ...)
        // skip it entirely, reciprocal-only consumers (SED) skip the
        // per-round solver-table fills.
        let mut round_cache = RoundCache::new();
        let cache_demand = policies
            .iter()
            .map(|p| p.round_cache_demand())
            .max()
            .unwrap_or(CacheDemand::None);

        let mut response_times = ResponseTimeHistogram::new();
        // Histogram-only mode keeps no per-server metric vectors — at
        // mean-field scale (n = 10⁵ .. 10⁶) the occupancy histogram plus
        // scalar totals are the entire metrics footprint.
        let mut tracker = if config.histogram_metrics {
            QueueLengthTracker::histogram_only(n)
        } else {
            QueueLengthTracker::new(n)
        };
        // Count-bucketed recorder: recording a timing sample is O(1) and
        // allocation-free, so the measured configuration pays (almost) no
        // instrumentation overhead beyond the two `Instant` reads — see
        // crates/bench/README.md, "Measurement-mode overhead".
        let mut decision_times = if config.measure_decision_times {
            Some(DecisionTimeHistogram::new())
        } else {
            None
        };
        let mut jobs_dispatched = 0u64;
        let mut jobs_completed = 0u64;

        // ---- Scenario layer (crates/sim/src/scenario.rs) ----
        // With the default (inert) scenario none of this state is allocated
        // or consulted and the round loop below is bit-identical to the
        // pre-scenario engine. Every schedule is drawn in counter mode
        // (`counter_draw`) from seeds keyed by *global* entity ids, so a
        // sharded run replays the identical schedule regardless of layout.
        let scenario = &config.scenario;
        let scn_active = !scenario.is_inert();
        let scn_seed = scenario.resolved_seed(config.seed);
        let server_faults = scn_active && scenario.server_fail_rate > 0.0;
        let server_fault_seeds: Vec<u64> = if server_faults {
            (0..n)
                .map(|s| {
                    derive_stream_seed(scn_seed, FAULT_STREAM_TAG, scenario.server_global_id(s))
                })
                .collect()
        } else {
            Vec::new()
        };
        let dispatcher_faults = scn_active && scenario.dispatcher_fail_rate > 0.0;
        let dispatcher_fault_seeds: Vec<u64> = if dispatcher_faults {
            (0..m)
                .map(|d| {
                    // Dispatchers share the fault tag with servers but live
                    // in the upper half of the index space.
                    let index = (1u64 << 63) | scenario.dispatcher_global_id(d);
                    derive_stream_seed(scn_seed, FAULT_STREAM_TAG, index)
                })
                .collect()
        } else {
            Vec::new()
        };
        let max_k = scenario.staleness.max_k();
        let ring_depth = (max_k + 1) as usize;
        let mut ring: Option<Vec<Vec<u64>>> = if scn_active && max_k > 0 {
            Some(vec![vec![0u64; n]; ring_depth])
        } else {
            None
        };
        let stale_seeds: Vec<u64> = match scenario.staleness {
            StalenessSpec::UniformPerRound { max_k } if scn_active && max_k > 0 => (0..m)
                .map(|d| {
                    derive_stream_seed(
                        scn_seed,
                        STALENESS_STREAM_TAG,
                        scenario.dispatcher_global_id(d),
                    )
                })
                .collect(),
            _ => Vec::new(),
        };
        let oracle: Option<ProbeLossOracle> = if scn_active && scenario.probe_loss_rate > 0.0 {
            let seeds = (0..m)
                .map(|d| {
                    derive_stream_seed(
                        scn_seed,
                        PROBE_LOSS_STREAM_TAG,
                        scenario.dispatcher_global_id(d),
                    )
                })
                .collect();
            Some(ProbeLossOracle::new(seeds, scenario.probe_loss_rate))
        } else {
            None
        };
        let scn_len = |len: usize| if scn_active { len } else { 0 };
        let mut avail = Availability::all_up(scn_len(n));
        let mut dispatcher_up: Vec<bool> = vec![true; scn_len(m)];
        let mut k_effs: Vec<u64> = vec![0; scn_len(m)];
        let mut stale_prev: Vec<bool> = vec![false; scn_len(m)];
        // Herding detector scratch: jobs received per server this round,
        // cleared sparsely through the touched list.
        let mut recv_counts: Vec<u64> = vec![0; scn_len(n)];
        let mut recv_touched: Vec<u32> = Vec::new();
        let mut degradation = DegradationMetrics::default();

        // ---- Checkpoint restore (crates/sim/src/checkpoint.rs) ----
        // Applied after the normal state construction above, so everything a
        // checkpoint does not capture (stream seeds, fault schedules, warm
        // caches) is already in its round-0 form and the restore only
        // overwrites the state that actually advances. The contract: after
        // this block the resumed loop consumes RNG draws and produces
        // decisions bit-identically to the uninterrupted run.
        let start_round = if let Some(ckpt) = resume {
            let digest = config.digest();
            let mismatch = |what: &str| {
                Err(SimError::Checkpoint(format!(
                    "checkpoint does not fit this run: {what}"
                )))
            };
            if ckpt.config_digest != digest {
                return Err(SimError::Checkpoint(format!(
                    "checkpoint was taken under config digest {:#018x}, this run is {digest:#018x}",
                    ckpt.config_digest
                )));
            }
            if ckpt.round == 0 || ckpt.round >= config.rounds {
                return mismatch(&format!(
                    "round {} outside the resumable range 1..{}",
                    ckpt.round, config.rounds
                ));
            }
            if ckpt.num_servers != n || ckpt.num_dispatchers != m {
                return mismatch(&format!(
                    "shape is {} servers x {} dispatchers, this run is {n} x {m}",
                    ckpt.num_servers, ckpt.num_dispatchers
                ));
            }
            if ckpt.queues.len() != n
                || ckpt.snapshot.len() != n
                || ckpt.policy_rngs.len() != m
                || ckpt.policy_state.len() != m
            {
                return mismatch("per-server / per-dispatcher vector widths disagree");
            }
            for (queue, segments) in queues.iter_mut().zip(&ckpt.queues) {
                for &(arrival_round, count) in segments {
                    queue.push(arrival_round, count);
                }
            }
            snapshot.copy_from_slice(&ckpt.snapshot);
            arrival_rng = StdRng::from_state(ckpt.arrival_rng);
            service_rng = StdRng::from_state(ckpt.service_rng);
            for (rng, &state) in policy_rngs.iter_mut().zip(&ckpt.policy_rngs) {
                *rng = StdRng::from_state(state);
            }
            response_times = ResponseTimeHistogram::from_raw_parts(
                ckpt.response_times.counts.clone(),
                ckpt.response_times.count,
                ckpt.response_times.raw_sum,
            )
            .map_err(SimError::Checkpoint)?;
            let t = &ckpt.tracker;
            if t.num_servers != n {
                return mismatch(&format!("tracker covers {} servers", t.num_servers));
            }
            if config.histogram_metrics != t.per_server_sum.is_empty() {
                return mismatch("metrics mode (full vs. histogram-only) disagrees");
            }
            tracker = QueueLengthTracker::from_raw_parts(
                t.num_servers,
                t.per_server_sum.clone(),
                t.per_server_max.clone(),
                t.idle_rounds.clone(),
                t.occupancy.clone(),
                t.total_sum,
                t.total_max,
                t.rounds,
            )
            .map_err(SimError::Checkpoint)?;
            decision_times = match (&ckpt.decision_times, config.measure_decision_times) {
                (Some(d), true) => Some(
                    DecisionTimeHistogram::from_raw_parts(
                        d.counts.clone(),
                        (d.count, d.sum, d.min, d.max),
                    )
                    .map_err(SimError::Checkpoint)?,
                ),
                (None, false) => None,
                _ => return mismatch("decision-time measurement presence disagrees"),
            };
            jobs_dispatched = ckpt.jobs_dispatched;
            jobs_completed = ckpt.jobs_completed;
            match (&ckpt.scenario, scn_active) {
                (Some(s), true) => {
                    if s.server_up.len() != n || s.dispatcher_up.len() != m || s.k_effs.len() != m {
                        return mismatch("scenario vector widths disagree");
                    }
                    for (server, &up) in s.server_up.iter().enumerate() {
                        if !up {
                            avail.set(server, false);
                        }
                    }
                    avail.refresh();
                    dispatcher_up.copy_from_slice(&s.dispatcher_up);
                    k_effs.copy_from_slice(&s.k_effs);
                    match (ring.as_mut(), &s.ring) {
                        (Some(dst), Some(src)) => {
                            if src.len() != dst.len() || src.iter().any(|row| row.len() != n) {
                                return mismatch("snapshot-ring shape disagrees");
                            }
                            for (dst_row, src_row) in dst.iter_mut().zip(src) {
                                dst_row.copy_from_slice(src_row);
                            }
                        }
                        (None, None) => {}
                        _ => return mismatch("snapshot-ring presence disagrees"),
                    }
                    degradation = s.degradation;
                    match oracle.as_ref() {
                        Some(oracle) => oracle.preload_dropped(s.oracle_dropped),
                        None if s.oracle_dropped != 0 => {
                            return mismatch("probe-loss tally without a probe-loss oracle");
                        }
                        None => {}
                    }
                }
                (None, false) => {}
                _ => return mismatch("scenario-state presence disagrees"),
            }
            for (d, (policy, blob)) in policies.iter_mut().zip(&ckpt.policy_state).enumerate() {
                policy.restore_state(blob).map_err(|msg| {
                    SimError::Checkpoint(format!("policy state of dispatcher {d}: {msg}"))
                })?;
            }
            ckpt.round
        } else {
            0
        };
        // The per-round cache carries no decision-relevant state of its own,
        // but its delta refresh assumes it described the previous round's
        // snapshot — untrue on the first resumed round, which therefore
        // rebuilds in full (bit-identical, like every full-vs-delta rebuild).
        let mut cache_needs_full = resume.is_some();

        let warmup = config.warmup_rounds;

        for round in start_round..config.rounds {
            if let Some(plan) = checkpoints.as_mut() {
                let stopping = plan.stop_at == Some(round);
                let periodic =
                    plan.every > 0 && round % plan.every == 0 && round != 0 && round != start_round;
                if stopping || periodic {
                    let capture = EngineCheckpoint {
                        config_digest: config.digest(),
                        round,
                        num_servers: n,
                        num_dispatchers: m,
                        queues: queues.iter().map(|q| q.segments().collect()).collect(),
                        snapshot: snapshot.clone(),
                        arrival_rng: arrival_rng.state(),
                        service_rng: service_rng.state(),
                        policy_rngs: policy_rngs.iter().map(|rng| rng.state()).collect(),
                        response_times: HistogramState {
                            counts: response_times.bucket_counts().to_vec(),
                            count: response_times.count(),
                            raw_sum: response_times.raw_sum(),
                        },
                        tracker: {
                            let (
                                num_servers,
                                per_server_sum,
                                per_server_max,
                                idle_rounds,
                                occupancy,
                                total_sum,
                                total_max,
                                rounds,
                            ) = tracker.raw_parts();
                            TrackerState {
                                num_servers,
                                per_server_sum,
                                per_server_max,
                                idle_rounds,
                                occupancy,
                                total_sum,
                                total_max,
                                rounds,
                            }
                        },
                        decision_times: decision_times.as_ref().map(|hist| {
                            let (count, sum, min, max) = hist.raw_parts();
                            DecisionState {
                                counts: hist.bucket_counts().to_vec(),
                                count,
                                sum,
                                min,
                                max,
                            }
                        }),
                        jobs_dispatched,
                        jobs_completed,
                        scenario: scn_active.then(|| ScenarioState {
                            server_up: (0..n).map(|s| avail.is_up(s)).collect(),
                            dispatcher_up: dispatcher_up.clone(),
                            k_effs: k_effs.clone(),
                            ring: ring.clone(),
                            degradation,
                            oracle_dropped: oracle.as_ref().map_or(0, |o| o.dropped()),
                        }),
                        policy_state: policies
                            .iter()
                            .map(|policy| {
                                let mut blob = Vec::new();
                                policy.save_state(&mut blob);
                                blob
                            })
                            .collect(),
                    };
                    (plan.sink)(capture)?;
                    if stopping {
                        return Ok(None);
                    }
                }
            }
            let measured_round = round >= warmup;
            if scn_active {
                // Phase 0: faults and information defects. One counter-mode
                // draw per entity per round; the draw itself is
                // state-independent (only its *interpretation* depends on
                // the current up/down state), so the schedule is a pure
                // function of `(scenario seed, global id, round)`.
                avail.begin_round();
                if server_faults {
                    for (s, &fault_seed) in server_fault_seeds.iter().enumerate() {
                        let u = unit_f64(counter_draw(fault_seed, round));
                        if avail.is_up(s) {
                            if u < scenario.server_fail_rate {
                                avail.set(s, false);
                            }
                        } else if u < scenario.server_repair_rate {
                            avail.set(s, true);
                        }
                    }
                }
                avail.refresh();
                degradation.server_down_rounds += (n - avail.num_up()) as u64;
                if dispatcher_faults {
                    for d in 0..m {
                        let u = unit_f64(counter_draw(dispatcher_fault_seeds[d], round));
                        if dispatcher_up[d] {
                            if u < scenario.dispatcher_fail_rate {
                                dispatcher_up[d] = false;
                            }
                        } else if u < scenario.dispatcher_repair_rate {
                            dispatcher_up[d] = true;
                        }
                    }
                }
                degradation.dispatcher_offline_rounds +=
                    dispatcher_up.iter().filter(|&&up| !up).count() as u64;
                // Each dispatcher's view age for this round, clamped to the
                // history that exists. `stale_prev` is recorded before the
                // overwrite — see `ScenarioRound::stale_prev`.
                for d in 0..m {
                    stale_prev[d] = k_effs[d] > 0;
                    let k = match scenario.staleness {
                        StalenessSpec::Fresh => 0,
                        StalenessSpec::Fixed { k } => k,
                        StalenessSpec::UniformPerRound { max_k } => {
                            if max_k == 0 {
                                0
                            } else {
                                counter_draw(stale_seeds[d], round) % (max_k + 1)
                            }
                        }
                    };
                    let k_eff = k.min(round);
                    k_effs[d] = k_eff;
                    if k_eff > 0 && dispatcher_up[d] {
                        degradation.stale_decision_rounds += 1;
                    }
                }
            }
            // The queue-length snapshot every dispatcher observes this
            // round; with delta tracking the same pass diffs it against the
            // previous round's values to produce the dirty set.
            if track_deltas {
                dirty.clear();
                for (s, (slot, queue)) in snapshot.iter_mut().zip(&queues).enumerate() {
                    let len = queue.len();
                    if *slot != len {
                        *slot = len;
                        dirty.push(s as u32);
                    }
                }
            } else {
                for (slot, queue) in snapshot.iter_mut().zip(&queues) {
                    *slot = queue.len();
                }
            }
            if measured_round {
                tracker.observe(&snapshot);
            }
            if let Some(ring) = ring.as_mut() {
                ring[(round as usize) % ring_depth].copy_from_slice(&snapshot);
            }
            // Round 0 has no predecessor snapshot, so no delta information.
            let have_deltas = track_deltas && round > 0;
            // Fair-weather fast path: one context (and one shared cache
            // refresh) serves every dispatcher. Under an active scenario
            // each dispatcher builds its own context (stale views differ
            // per dispatcher, and a shared solver table would be computed
            // against a view some dispatchers do not see); the cache is a
            // pure accelerator, so skipping it is decision-invisible.
            // The cache is refreshed whenever a policy wants it — also under
            // an active scenario, where it describes this round's *fresh*
            // snapshot and is attached only to fresh-view dispatchers
            // (`ScenarioRound::ctx`). Scenario rounds always rebuild in
            // full: the dirty diff describes the fair-weather bookkeeping,
            // and delta repair vs. full rebuild is bit-identical anyway.
            let cache_ready = cache_demand > CacheDemand::None;
            if cache_ready {
                if have_deltas && !scn_active && !cache_needs_full {
                    round_cache.begin_round_delta(&snapshot, rates, &dirty, cache_demand);
                } else {
                    round_cache.begin_round_for(&snapshot, rates, cache_demand);
                }
            }
            cache_needs_full = false;
            let shared_ctx: Option<DispatchContext<'_>> = if scn_active {
                None
            } else {
                let ctx = if cache_ready {
                    DispatchContext::with_cache(&snapshot, rates, m, round, &round_cache)
                } else {
                    DispatchContext::new(&snapshot, rates, m, round)
                };
                Some(if have_deltas {
                    ctx.with_dirty(&dirty)
                } else {
                    ctx
                })
            };
            let scn_round: Option<ScenarioRound<'_>> = if scn_active {
                Some(ScenarioRound {
                    rates,
                    snapshot: &snapshot,
                    ring: ring.as_deref(),
                    k_effs: &k_effs,
                    stale_prev: &stale_prev,
                    dirty: if have_deltas { Some(&dirty) } else { None },
                    cache: if cache_ready {
                        Some(&round_cache)
                    } else {
                        None
                    },
                    avail: &avail,
                    oracle: oracle.as_ref(),
                    m,
                    round,
                })
            } else {
                None
            };
            let ctx_for = |d: usize| match shared_ctx {
                Some(ctx) => ctx,
                None => scn_round
                    .as_ref()
                    .expect("a scenario round exists whenever there is no shared context")
                    .ctx(d),
            };

            // Phase 1: arrivals. Arrivals are always *sampled* (the stream
            // must not depend on the scenario), then jobs arriving at an
            // offline dispatcher — or while no server is up — are lost.
            arrivals.clear();
            match wl_sampler.as_mut() {
                Some(sampler) => {
                    let g = sampler.begin_round(round);
                    sampler.sample_into(round, g, &mut arrivals);
                }
                None => {
                    arrivals.extend(arrival_processes.iter().map(|p| p.sample(&mut arrival_rng)));
                }
            }
            if let Some(trace) = trace.as_deref_mut() {
                // Raw sampled counts, recorded *before* scenario zeroing:
                // replaying the trace under the same scenario re-applies
                // the identical losses.
                for (d, &count) in arrivals.iter().enumerate() {
                    trace.record_sampled_arrival(round, d, count);
                }
            }
            if scn_active {
                let no_server_up = avail.num_up() == 0;
                for d in 0..m {
                    if (!dispatcher_up[d] || no_server_up) && arrivals[d] > 0 {
                        degradation.arrivals_lost =
                            degradation.arrivals_lost.saturating_add(arrivals[d]);
                        arrivals[d] = 0;
                    }
                }
            }
            if let Some(trace) = trace.as_deref_mut() {
                for (d, &count) in arrivals.iter().enumerate() {
                    trace.record_arrival(round, d as u32, count);
                }
            }

            // Phase 2: dispatching. All dispatchers see the same snapshot and
            // act independently (so the iteration order is free — see
            // `dispatch_order` above). Under an active scenario the views may
            // differ per dispatcher; offline dispatchers still observe (their
            // failure silences their arrivals, not their bookkeeping).
            for d in 0..m {
                let ctx = ctx_for(d);
                policies[d].observe_round(&ctx, &mut policy_rngs[d]);
            }
            if track_deltas {
                dispatch_order.sort_unstable_by_key(|&d| (arrivals[d as usize], d));
            }
            // Without delta tracking `dispatch_order` stays `0..m` — the
            // PR 4 iteration order.
            for &d in &dispatch_order {
                let d = d as usize;
                let batch = arrivals[d] as usize;
                if batch == 0 {
                    continue;
                }
                assignment.clear();
                let ctx = ctx_for(d);
                match decision_times.as_mut() {
                    // Warm-up decisions are never recorded, so they skip the
                    // two `Instant::now()` reads as well — warm-up rounds
                    // run at full (unmeasured) speed.
                    Some(samples) if measured_round => {
                        let start = Instant::now();
                        policies[d].dispatch_into(
                            &ctx,
                            batch,
                            &mut assignment,
                            &mut policy_rngs[d],
                        );
                        samples.record(start.elapsed().as_secs_f64() * 1e6);
                    }
                    _ => {
                        policies[d].dispatch_into(
                            &ctx,
                            batch,
                            &mut assignment,
                            &mut policy_rngs[d],
                        );
                    }
                }
                if track_deltas {
                    // Fused validate + coalesced push: a policy violation
                    // aborts the whole run (partial pushes are discarded
                    // with it), so validation and enqueueing can share one
                    // pass, with the same error semantics as
                    // `validate_assignment` (arity first, then the first
                    // out-of-range destination in order). Same-server runs
                    // collapse into one RLE segment push each — identical
                    // queue state, since same-round pushes merge inside the
                    // segment anyway. (Runs rather than full per-batch
                    // counts on purpose: a scatter/gather count pass
                    // measured *slower* than the back-merges it saves for
                    // spread-out assignments like SCD's alias draws.)
                    let violation = |source| SimError::PolicyViolation {
                        policy: factory.name().to_string(),
                        dispatcher: d,
                        source,
                    };
                    if assignment.len() != batch {
                        return Err(violation(ModelError::AssignmentArity {
                            got: assignment.len(),
                            expected: batch,
                        }));
                    }
                    let mut i = 0;
                    while i < assignment.len() {
                        let server = assignment[i];
                        if server.index() >= n {
                            return Err(violation(ModelError::UnknownServer {
                                server: server.index(),
                                num_servers: n,
                            }));
                        }
                        if scn_active && !avail.is_up(server.index()) {
                            return Err(violation(ModelError::ServerDown {
                                server: server.index(),
                            }));
                        }
                        let mut count = 1u64;
                        while i + (count as usize) < assignment.len()
                            && assignment[i + count as usize] == server
                        {
                            count += 1;
                        }
                        queues[server.index()].push(round, count);
                        if let Some(trace) = trace.as_deref_mut() {
                            trace.record_dispatch(round, d as u32, server.index() as u32, count);
                        }
                        if scn_active {
                            let slot = server.index();
                            if recv_counts[slot] == 0 {
                                recv_touched.push(slot as u32);
                            }
                            recv_counts[slot] += count;
                        }
                        i += count as usize;
                    }
                } else {
                    // The PR 4-faithful loop: validation pass, then one
                    // push per job (same queue state — same-round pushes
                    // merge inside the segment).
                    validate_assignment(&assignment, batch, n).map_err(|source| {
                        SimError::PolicyViolation {
                            policy: factory.name().to_string(),
                            dispatcher: d,
                            source,
                        }
                    })?;
                    if scn_active {
                        if let Some(&bad) = assignment.iter().find(|s| !avail.is_up(s.index())) {
                            return Err(SimError::PolicyViolation {
                                policy: factory.name().to_string(),
                                dispatcher: d,
                                source: ModelError::ServerDown {
                                    server: bad.index(),
                                },
                            });
                        }
                    }
                    for &server in &assignment {
                        queues[server.index()].push(round, 1);
                        if let Some(trace) = trace.as_deref_mut() {
                            trace.record_dispatch(round, d as u32, server.index() as u32, 1);
                        }
                        if scn_active {
                            let slot = server.index();
                            if recv_counts[slot] == 0 {
                                recv_touched.push(slot as u32);
                            }
                            recv_counts[slot] += 1;
                        }
                    }
                }
                if measured_round {
                    jobs_dispatched += batch as u64;
                }
            }

            if scn_active {
                // Herding indicator: a round where one server received a
                // strict majority of the (at least two) dispatched jobs —
                // the signature failure mode of stale uncoordinated views.
                let mut total = 0u64;
                let mut peak = 0u64;
                for &s in &recv_touched {
                    let c = recv_counts[s as usize];
                    total += c;
                    peak = peak.max(c);
                    recv_counts[s as usize] = 0;
                }
                recv_touched.clear();
                if total >= 2 && 2 * peak > total {
                    degradation.herding_rounds += 1;
                }
            }

            // Phase 3: departures. Capacities are drawn for every server every
            // round (even idle ones) so the service stream does not depend on
            // either the policy under test or the scenario; a down server's
            // draw is then discarded — its queue freezes until repair. Whole
            // segments complete at once, so this phase costs O(segments
            // touched), not O(jobs).
            for s in 0..n {
                let capacity = service_processes[s].sample(&mut service_rng);
                if scn_active && !avail.is_up(s) {
                    continue;
                }
                queues[s].pop(capacity, |arrival_round, count| {
                    if arrival_round >= warmup {
                        response_times.record_many(round - arrival_round + 1, count);
                        jobs_completed += count;
                    }
                    if let Some(trace) = trace.as_deref_mut() {
                        trace.record_service(round, s as u32, arrival_round, count);
                    }
                });
            }
        }

        let jobs_in_flight = jobs_dispatched.saturating_sub(jobs_completed);
        // Computed from the occupancy histogram's exact integer zero-bucket
        // in both metric modes (identical to the across-server average of
        // the per-server idle fractions, with one rounding instead of n).
        let mean_idle_fraction = tracker.mean_idle_fraction();

        Ok(Some(SimReport {
            policy: factory.name().to_string(),
            rounds: config.rounds,
            warmup_rounds: warmup,
            offered_load: config.offered_load(),
            jobs_dispatched,
            jobs_completed,
            jobs_in_flight,
            response_times,
            queues: QueueSummary {
                mean_total_backlog: tracker.mean_total_backlog(),
                max_total_backlog: tracker.max_total_backlog(),
                worst_mean_queue: tracker.worst_mean_queue(),
                mean_idle_fraction,
            },
            queue_occupancy: tracker.into_occupancy(),
            decision_times_us: decision_times,
            degradation: scn_active.then(|| {
                let mut metrics = degradation;
                metrics.probes_dropped = oracle.as_ref().map_or(0, |o| o.dropped());
                metrics
            }),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalSpec;
    use crate::services::ServiceModel;
    use scd_model::{BoxedPolicy, ClusterSpec, DispatchPolicy, ServerId};

    /// A policy that always targets server 0 — turns the engine into an
    /// easily checkable deterministic queueing system.
    struct AllToFirst;

    impl DispatchPolicy for AllToFirst {
        fn policy_name(&self) -> &str {
            "all-to-first"
        }
        fn dispatch_batch(
            &mut self,
            _ctx: &DispatchContext<'_>,
            batch: usize,
            _rng: &mut dyn rand::RngCore,
        ) -> Vec<ServerId> {
            vec![ServerId::new(0); batch]
        }
    }

    /// A policy that returns garbage, to exercise the validation path.
    struct Broken;

    impl DispatchPolicy for Broken {
        fn policy_name(&self) -> &str {
            "broken"
        }
        fn dispatch_batch(
            &mut self,
            _ctx: &DispatchContext<'_>,
            _batch: usize,
            _rng: &mut dyn rand::RngCore,
        ) -> Vec<ServerId> {
            vec![ServerId::new(999)]
        }
    }

    fn factory_of<P: DispatchPolicy + Default + 'static>(name: &'static str) -> impl PolicyFactory {
        struct F<P> {
            name: &'static str,
            _marker: std::marker::PhantomData<fn() -> P>,
        }
        impl<P: DispatchPolicy + Default + 'static> PolicyFactory for F<P> {
            fn name(&self) -> &str {
                self.name
            }
            fn build(&self, _d: DispatcherId, _s: &ClusterSpec) -> BoxedPolicy {
                Box::new(P::default())
            }
        }
        F::<P> {
            name,
            _marker: std::marker::PhantomData,
        }
    }

    impl Default for AllToFirst {
        fn default() -> Self {
            AllToFirst
        }
    }
    impl Default for Broken {
        fn default() -> Self {
            Broken
        }
    }

    fn deterministic_config() -> SimConfig {
        SimConfig {
            spec: ClusterSpec::from_rates(vec![2.0, 1.0]).unwrap(),
            num_dispatchers: 1,
            rounds: 10,
            warmup_rounds: 0,
            seed: 1,
            arrivals: ArrivalSpec::Deterministic { jobs_per_round: 2 },
            services: ServiceModel::Deterministic,
            measure_decision_times: false,
            histogram_metrics: false,
            scenario: crate::scenario::ScenarioSpec::default(),
            workload: crate::workload::WorkloadSpec::default(),
        }
    }

    #[test]
    fn deterministic_single_server_pipeline() {
        // 2 jobs arrive each round, all go to server 0 which serves exactly 2
        // per round → every job finishes in the round it arrived (RT = 1).
        let sim = Simulation::new(deterministic_config()).unwrap();
        let report = sim.run(&factory_of::<AllToFirst>("all-to-first")).unwrap();
        assert_eq!(report.policy, "all-to-first");
        assert_eq!(report.jobs_dispatched, 20);
        assert_eq!(report.jobs_completed, 20);
        assert_eq!(report.jobs_in_flight, 0);
        assert_eq!(report.response_times.max(), 1);
        assert!((report.mean_response_time() - 1.0).abs() < 1e-12);
        assert_eq!(
            report.queues.max_total_backlog, 0.0,
            "queues observed at round start"
        );
    }

    #[test]
    fn overload_builds_a_backlog() {
        // 3 jobs/round onto a server that serves 2/round → 1 job/round backlog.
        let mut config = deterministic_config();
        config.arrivals = ArrivalSpec::Deterministic { jobs_per_round: 3 };
        config.rounds = 20;
        let sim = Simulation::new(config).unwrap();
        let report = sim.run(&factory_of::<AllToFirst>("all-to-first")).unwrap();
        assert_eq!(report.jobs_dispatched, 60);
        assert!(report.jobs_in_flight >= 18, "backlog should accumulate");
        // Queue at the start of round t is t (one unserved job per past round).
        assert_eq!(report.queues.max_total_backlog, 19.0);
    }

    #[test]
    fn warmup_rounds_are_excluded_from_statistics() {
        let mut config = deterministic_config();
        config.rounds = 10;
        config.warmup_rounds = 5;
        let sim = Simulation::new(config).unwrap();
        let report = sim.run(&factory_of::<AllToFirst>("all-to-first")).unwrap();
        // Only rounds 5..10 are measured: 2 jobs per round.
        assert_eq!(report.jobs_dispatched, 10);
        assert_eq!(report.response_times.count(), 10);
    }

    #[test]
    fn identical_seeds_give_identical_reports() {
        let spec = ClusterSpec::from_rates(vec![3.0, 1.0, 2.0]).unwrap();
        let config = SimConfig::builder(spec)
            .dispatchers(3)
            .rounds(300)
            .seed(42)
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.8 })
            .build()
            .unwrap();
        let sim = Simulation::new(config).unwrap();
        let a = sim.run(&factory_of::<AllToFirst>("all-to-first")).unwrap();
        let b = sim.run(&factory_of::<AllToFirst>("all-to-first")).unwrap();
        assert_eq!(a.jobs_dispatched, b.jobs_dispatched);
        assert_eq!(a.response_times, b.response_times);
    }

    #[test]
    fn arrival_stream_is_policy_independent() {
        // Two different policies under the same seed must see the same total
        // number of dispatched jobs (the arrival stream does not depend on
        // dispatching decisions).
        use scd_core::policy::ScdFactory;
        let spec = ClusterSpec::from_rates(vec![3.0, 1.0, 2.0]).unwrap();
        let config = SimConfig::builder(spec)
            .dispatchers(2)
            .rounds(200)
            .seed(11)
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.7 })
            .build()
            .unwrap();
        let sim = Simulation::new(config).unwrap();
        let a = sim.run(&factory_of::<AllToFirst>("all-to-first")).unwrap();
        let b = sim.run(&ScdFactory::new()).unwrap();
        assert_eq!(a.jobs_dispatched, b.jobs_dispatched);
    }

    #[test]
    fn histogram_metrics_mode_matches_full_mode_except_worst_mean_queue() {
        // Histogram-only mode drops per-server state; every report field
        // except worst_mean_queue (which degrades to the across-server mean)
        // must be bit-identical to the full-tracking run.
        use scd_core::policy::ScdFactory;
        let spec = ClusterSpec::from_rates(vec![3.0, 1.0, 2.0, 2.0]).unwrap();
        let build = |histogram: bool| {
            SimConfig::builder(spec.clone())
                .dispatchers(2)
                .rounds(200)
                .warmup_rounds(20)
                .seed(7)
                .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.8 })
                .histogram_metrics(histogram)
                .build()
                .unwrap()
        };
        let full = Simulation::new(build(false))
            .unwrap()
            .run(&ScdFactory::new())
            .unwrap();
        let histo = Simulation::new(build(true))
            .unwrap()
            .run(&ScdFactory::new())
            .unwrap();
        assert_eq!(full.jobs_dispatched, histo.jobs_dispatched);
        assert_eq!(full.response_times, histo.response_times);
        assert_eq!(full.queue_occupancy, histo.queue_occupancy);
        assert!(!full.queue_occupancy.is_empty());
        assert_eq!(
            full.queues.mean_total_backlog,
            histo.queues.mean_total_backlog
        );
        assert_eq!(
            full.queues.max_total_backlog,
            histo.queues.max_total_backlog
        );
        assert_eq!(
            full.queues.mean_idle_fraction,
            histo.queues.mean_idle_fraction
        );
        // Degraded statistic: total backlog averaged over servers.
        assert!(
            (histo.queues.worst_mean_queue - histo.queues.mean_total_backlog / 4.0).abs() < 1e-12
        );
        assert!(full.queues.worst_mean_queue >= histo.queues.worst_mean_queue);
        // The occupancy histogram carries the full measured mass:
        // (rounds - warmup) * num_servers observations.
        let mass: u64 = full.queue_occupancy.iter().sum();
        assert_eq!(mass, 180 * 4);
        // And its normalization is a probability distribution.
        let dist = full.queue_length_distribution();
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn policy_violations_are_reported_not_panicked() {
        let sim = Simulation::new(deterministic_config()).unwrap();
        let err = sim.run(&factory_of::<Broken>("broken")).unwrap_err();
        match &err {
            SimError::PolicyViolation {
                policy, dispatcher, ..
            } => {
                assert_eq!(policy, "broken");
                assert_eq!(*dispatcher, 0);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("broken"));
        assert!(err.source().is_some());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut config = deterministic_config();
        config.num_dispatchers = 0;
        assert!(matches!(
            Simulation::new(config),
            Err(SimError::InvalidConfig(_))
        ));

        let mut config = deterministic_config();
        config.rounds = 0;
        assert!(Simulation::new(config).is_err());

        let mut config = deterministic_config();
        config.warmup_rounds = config.rounds;
        assert!(Simulation::new(config).is_err());

        // Arrival-spec defects surface as InvalidConfig, not panics.
        let mut config = deterministic_config();
        config.arrivals = ArrivalSpec::PoissonRates {
            rates: vec![1.0, 2.0],
        };
        assert!(matches!(
            Simulation::new(config),
            Err(SimError::InvalidConfig(_))
        ));
        let mut config = deterministic_config();
        config.arrivals = ArrivalSpec::PoissonOfferedLoad {
            offered_load: f64::NAN,
        };
        assert!(matches!(
            Simulation::new(config),
            Err(SimError::InvalidConfig(_))
        ));

        // Workload defects too.
        let mut config = deterministic_config();
        config.workload.modulation = crate::workload::ModulationSpec::Diurnal {
            period: 100,
            amplitude: 0.5,
        };
        // Deterministic arrivals cannot be modulated.
        assert!(matches!(
            Simulation::new(config),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn traced_run_matches_untraced_and_replays() {
        let spec = ClusterSpec::from_rates(vec![3.0, 1.0, 2.0]).unwrap();
        let config = SimConfig::builder(spec)
            .dispatchers(2)
            .rounds(200)
            .seed(17)
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.8 })
            .build()
            .unwrap();
        let sim = Simulation::new(config.clone()).unwrap();
        let plain = sim.run(&factory_of::<AllToFirst>("all-to-first")).unwrap();
        let (traced, trace) = sim
            .run_traced(&factory_of::<AllToFirst>("all-to-first"))
            .unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the run");
        assert_eq!(trace.rounds, 200);
        assert!(!trace.events.is_empty());

        // Replaying the recorded arrivals reproduces the report bit-exactly.
        let mut replay_config = config;
        replay_config.workload.replay = Some(trace.arrivals.clone());
        let replay_sim = Simulation::new(replay_config).unwrap();
        let replayed = replay_sim
            .run(&factory_of::<AllToFirst>("all-to-first"))
            .unwrap();
        assert_eq!(plain, replayed);
    }

    #[test]
    fn decision_times_are_collected_when_requested() {
        let mut config = deterministic_config();
        config.measure_decision_times = true;
        config.rounds = 50;
        let sim = Simulation::new(config).unwrap();
        let report = sim.run(&factory_of::<AllToFirst>("all-to-first")).unwrap();
        let samples = report.decision_times_us.expect("decision times requested");
        assert_eq!(
            samples.len(),
            50,
            "one timed decision per round (batch > 0)"
        );
        assert!(samples.min() >= 0.0);
        assert!(samples.max() >= samples.min());
    }
}
