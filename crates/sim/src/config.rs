//! Simulation configuration.

use crate::arrivals::ArrivalSpec;
use crate::scenario::ScenarioSpec;
use crate::services::ServiceModel;
use crate::workload::WorkloadSpec;
use scd_model::{ClusterSpec, ModelError, RateProfile};
use serde::{Deserialize, Serialize};

/// Complete description of one simulation run (one cluster, one arrival
/// pattern, one policy will be plugged in by the engine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The cluster (per-server service rates).
    pub spec: ClusterSpec,
    /// Number of dispatchers `m`.
    pub num_dispatchers: usize,
    /// Total number of simulated rounds.
    pub rounds: u64,
    /// Rounds at the beginning of the run excluded from all statistics
    /// (transient warm-up).
    pub warmup_rounds: u64,
    /// Master seed; every stochastic stream in the run derives from it.
    pub seed: u64,
    /// The arrival process.
    pub arrivals: ArrivalSpec,
    /// The service process.
    pub services: ServiceModel,
    /// When true the engine wall-clock-times every dispatching decision
    /// (needed for the Figure 5/8 reproductions; adds measurement overhead).
    pub measure_decision_times: bool,
    /// When true the engine collects queue statistics in **histogram-only**
    /// mode: no per-server metric vectors are allocated, only the
    /// queue-length occupancy histogram plus scalar totals (see
    /// [`scd_metrics::QueueLengthTracker::histogram_only`]). Intended for
    /// mean-field-scale runs (`n = 10⁵ .. 10⁶`), where per-server state in
    /// the metrics layer costs tens of megabytes and the distribution is
    /// the quantity of interest. The reported `worst_mean_queue` degrades
    /// to the across-server mean in this mode; every other statistic is
    /// identical.
    #[serde(default)]
    pub histogram_metrics: bool,
    /// The fault/churn/staleness scenario; the default is "no faults",
    /// which runs the fair-weather fast path bit-for-bit.
    pub scenario: ScenarioSpec,
    /// The time-varying / trace-driven workload; the default is inert
    /// (stationary), which reproduces the plain arrival path bit-for-bit.
    pub workload: WorkloadSpec,
}

impl SimConfig {
    /// Starts a builder for the given cluster.
    pub fn builder(spec: ClusterSpec) -> SimConfigBuilder {
        SimConfigBuilder::new(spec)
    }

    /// Convenience constructor matching the paper's evaluation setup: `n`
    /// servers with rates drawn from `profile`, `m` dispatchers with equal
    /// Poisson arrival rates calibrated to the offered load `ρ`, geometric
    /// services.
    ///
    /// The cluster draw uses a seed derived from `seed` so that the same
    /// `(n, profile, seed)` triple always produces the same cluster while
    /// different seeds produce different clusters.
    ///
    /// # Errors
    /// Returns an error if the profile produces an invalid cluster.
    pub fn paper_setup(
        n: usize,
        m: usize,
        offered_load: f64,
        profile: &RateProfile,
        rounds: u64,
        seed: u64,
    ) -> Result<SimConfig, ModelError> {
        use rand::SeedableRng;
        let mut cluster_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC1_05_7E_12);
        let spec = profile.materialize(n, &mut cluster_rng)?;
        Ok(SimConfig {
            spec,
            num_dispatchers: m,
            rounds,
            warmup_rounds: 0,
            seed,
            arrivals: ArrivalSpec::PoissonOfferedLoad { offered_load },
            services: ServiceModel::Geometric,
            measure_decision_times: false,
            histogram_metrics: false,
            scenario: ScenarioSpec::default(),
            workload: WorkloadSpec::default(),
        })
    }

    /// Upper bound on the `n × m` (servers × dispatchers) product. The
    /// engine's per-round work — and the per-dispatcher policy state of the
    /// stateful policies — scales with `n · m`, so a configuration beyond
    /// this is rejected at build time instead of thrashing for hours.
    pub const MAX_STATE_CELLS: u128 = 1 << 31;

    /// Ceiling on [`estimated_memory_bytes`](SimConfig::estimated_memory_bytes)
    /// for one engine (one shard's engine in a sharded run): 32 GiB.
    pub const MAX_ESTIMATED_MEMORY_BYTES: u128 = 32 << 30;

    /// Order-of-magnitude estimate of one engine's resident memory for this
    /// configuration, in bytes: per-server state (queues, snapshot, round
    /// cache solver tables, queue tracker — the tracker's per-server
    /// vectors are skipped under [`histogram_metrics`](SimConfig::histogram_metrics))
    /// plus per-dispatcher state, including the `O(n)` sampler tables a
    /// stateful policy keeps per dispatcher (the `n · m` term).
    pub fn estimated_memory_bytes(&self) -> u128 {
        let n = self.num_servers() as u128;
        let m = self.num_dispatchers as u128;
        let per_server: u128 = if self.histogram_metrics { 192 } else { 224 };
        n * per_server + m * 64 + n * m * 16
    }

    /// Validates the configuration's *scale*: the `n × m` cell count against
    /// [`MAX_STATE_CELLS`](SimConfig::MAX_STATE_CELLS) and the estimated
    /// memory against
    /// [`MAX_ESTIMATED_MEMORY_BYTES`](SimConfig::MAX_ESTIMATED_MEMORY_BYTES).
    /// Called by both the builder and `Simulation::new`, so an over-scale
    /// configuration fails fast with a sized error message rather than
    /// OOM-ing mid-run.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`](crate::engine::SimError) naming
    /// the exceeded bound.
    pub fn validate_scale(&self) -> Result<(), crate::engine::SimError> {
        use crate::engine::SimError;
        let n = self.num_servers() as u128;
        let m = self.num_dispatchers as u128;
        let cells = n * m;
        if cells > Self::MAX_STATE_CELLS {
            return Err(SimError::InvalidConfig(format!(
                "{n} servers × {m} dispatchers = {cells} state cells exceeds \
                 the {} cap; shard the run or reduce the system",
                Self::MAX_STATE_CELLS
            )));
        }
        let estimated = self.estimated_memory_bytes();
        if estimated > Self::MAX_ESTIMATED_MEMORY_BYTES {
            return Err(SimError::InvalidConfig(format!(
                "estimated memory of {} MiB exceeds the {} MiB ceiling; \
                 shard the run, reduce the system, or enable histogram_metrics",
                estimated >> 20,
                Self::MAX_ESTIMATED_MEMORY_BYTES >> 20
            )));
        }
        Ok(())
    }

    /// The offered load `ρ` this configuration induces.
    ///
    /// # Panics
    /// Panics on an arrival spec that fails validation — configurations
    /// produced by the builder or accepted by `Simulation::new` are always
    /// valid here.
    pub fn offered_load(&self) -> f64 {
        self.arrivals
            .offered_load(self.num_dispatchers, self.spec.total_rate())
            .expect("validated configuration")
    }

    /// Number of servers `n`.
    pub fn num_servers(&self) -> usize {
        self.spec.num_servers()
    }

    /// Renders the complete configuration in the workspace's `key = value`
    /// file format — the wire form the process fabric sends to shard
    /// workers over stdin. [`from_key_values`](SimConfig::from_key_values)
    /// of the result reconstructs `self` **exactly** (Rust's shortest-repr
    /// float `Display` round-trips every `f64` bit for bit), including the
    /// scenario/workload id maps the sharded engine derives, which the
    /// standalone scenario/workload file formats deliberately omit.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`](crate::engine::SimError) when
    /// the workload carries a replay trace — the recorded arrival matrix
    /// has no single-line wire syntax, so fabric runs do not support
    /// trace-replay configurations.
    pub fn to_key_values(&self) -> Result<String, crate::engine::SimError> {
        use crate::engine::SimError;
        if self.workload.replay.is_some() {
            return Err(SimError::InvalidConfig(
                "a workload replay trace has no key = value wire form; \
                 fabric workers cannot receive trace-replay configurations"
                    .into(),
            ));
        }
        let mut out = String::new();
        let mut push = |key: &str, value: String| {
            out.push_str(key);
            out.push_str(" = ");
            out.push_str(&value);
            out.push('\n');
        };
        let join_f64 = |xs: &[f64]| {
            xs.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let join_u32 = |xs: &[u32]| {
            xs.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        push("rates", join_f64(self.spec.rates()));
        push("dispatchers", self.num_dispatchers.to_string());
        push("rounds", self.rounds.to_string());
        push("warmup_rounds", self.warmup_rounds.to_string());
        push("seed", self.seed.to_string());
        match &self.arrivals {
            ArrivalSpec::PoissonOfferedLoad { offered_load } => {
                push("arrivals", format!("offered_load:{offered_load}"));
            }
            ArrivalSpec::PoissonRates { rates } => {
                push("arrivals", format!("rates:{}", join_f64(rates)));
            }
            ArrivalSpec::Deterministic { jobs_per_round } => {
                push("arrivals", format!("deterministic:{jobs_per_round}"));
            }
        }
        match self.services {
            ServiceModel::Geometric => push("services", "geometric".into()),
            ServiceModel::Deterministic => push("services", "deterministic".into()),
        }
        push(
            "measure_decision_times",
            self.measure_decision_times.to_string(),
        );
        // Emitted only when set, so pre-existing wire texts (and their
        // digests) are byte-identical to runs that never heard of the flag.
        if self.histogram_metrics {
            push("histogram_metrics", "true".into());
        }
        for line in self.scenario.to_key_values().lines() {
            out.push_str("scenario.");
            out.push_str(line);
            out.push('\n');
        }
        let mut push = |key: &str, value: String| {
            out.push_str(key);
            out.push_str(" = ");
            out.push_str(&value);
            out.push('\n');
        };
        if let Some(ids) = &self.scenario.server_ids {
            push("scenario.server_ids", join_u32(ids));
        }
        if let Some(ids) = &self.scenario.dispatcher_ids {
            push("scenario.dispatcher_ids", join_u32(ids));
        }
        for line in self.workload.to_key_values().lines() {
            out.push_str("workload.");
            out.push_str(line);
            out.push('\n');
        }
        let mut push = |key: &str, value: String| {
            out.push_str(key);
            out.push_str(" = ");
            out.push_str(&value);
            out.push('\n');
        };
        if let Some(ids) = &self.workload.dispatcher_ids {
            push("workload.dispatcher_ids", join_u32(ids));
        }
        Ok(out)
    }

    /// Parses the `key = value` wire form produced by
    /// [`to_key_values`](SimConfig::to_key_values): one assignment per
    /// line, `#` comments and blank lines ignored. `scenario.*` /
    /// `workload.*` keys are delegated to
    /// [`ScenarioSpec::from_key_values`] / [`WorkloadSpec::from_key_values`]
    /// after prefix stripping, with the id-map keys (`scenario.server_ids`,
    /// `scenario.dispatcher_ids`, `workload.dispatcher_ids`) handled here —
    /// they exist only on this wire format.
    ///
    /// The reconstructed configuration is **not** revalidated against the
    /// builder: the wire format transports already-validated shard configs
    /// verbatim (a shard config's id maps would fail the builder's
    /// standalone validation against the *sub*-cluster shape, by design).
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`](crate::engine::SimError) for
    /// malformed lines, unknown keys, unparsable values, or missing
    /// required keys (`rates`, `dispatchers`, `rounds`, `seed`,
    /// `arrivals`).
    pub fn from_key_values(text: &str) -> Result<SimConfig, crate::engine::SimError> {
        use crate::engine::SimError;
        let mut rates: Option<Vec<f64>> = None;
        let mut dispatchers: Option<usize> = None;
        let mut rounds: Option<u64> = None;
        let mut warmup_rounds: u64 = 0;
        let mut seed: Option<u64> = None;
        let mut arrivals: Option<ArrivalSpec> = None;
        let mut services = ServiceModel::Geometric;
        let mut measure_decision_times = false;
        let mut histogram_metrics = false;
        let mut scenario_lines = String::new();
        let mut workload_lines = String::new();
        let mut scenario_server_ids: Option<Vec<u32>> = None;
        let mut scenario_dispatcher_ids: Option<Vec<u32>> = None;
        let mut workload_dispatcher_ids: Option<Vec<u32>> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = match raw.split_once('#') {
                Some((before, _comment)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                SimError::InvalidConfig(format!(
                    "config line {}: expected `key = value`, got {raw:?}",
                    lineno + 1
                ))
            })?;
            let (key, value) = (key.trim(), value.trim());
            let bad_value = |what: &str| {
                SimError::InvalidConfig(format!(
                    "config line {}: `{key}` needs {what}, got {value:?}",
                    lineno + 1
                ))
            };
            let parse_f64_list = |value: &str, what: &str| -> Result<Vec<f64>, SimError> {
                value
                    .split(',')
                    .map(|x| x.trim().parse::<f64>().map_err(|_| bad_value(what)))
                    .collect()
            };
            let parse_u32_list = |value: &str| -> Result<Vec<u32>, SimError> {
                value
                    .split(',')
                    .map(|x| {
                        x.trim()
                            .parse::<u32>()
                            .map_err(|_| bad_value("a comma-separated integer list"))
                    })
                    .collect()
            };
            match key {
                "rates" => rates = Some(parse_f64_list(value, "a comma-separated float list")?),
                "dispatchers" => {
                    dispatchers = Some(value.parse().map_err(|_| bad_value("an integer"))?);
                }
                "rounds" => rounds = Some(value.parse().map_err(|_| bad_value("an integer"))?),
                "warmup_rounds" => {
                    warmup_rounds = value.parse().map_err(|_| bad_value("an integer"))?;
                }
                "seed" => seed = Some(value.parse().map_err(|_| bad_value("an integer"))?),
                "arrivals" => {
                    let (kind, arg) = value
                        .split_once(':')
                        .ok_or_else(|| bad_value("`kind:arguments`"))?;
                    arrivals = Some(match kind.trim() {
                        "offered_load" => ArrivalSpec::PoissonOfferedLoad {
                            offered_load: arg
                                .trim()
                                .parse()
                                .map_err(|_| bad_value("offered_load:<float>"))?,
                        },
                        "rates" => ArrivalSpec::PoissonRates {
                            rates: parse_f64_list(arg, "rates:<float list>")?,
                        },
                        "deterministic" => ArrivalSpec::Deterministic {
                            jobs_per_round: arg
                                .trim()
                                .parse()
                                .map_err(|_| bad_value("deterministic:<integer>"))?,
                        },
                        _ => return Err(bad_value("offered_load / rates / deterministic")),
                    });
                }
                "services" => {
                    services = match value {
                        "geometric" => ServiceModel::Geometric,
                        "deterministic" => ServiceModel::Deterministic,
                        _ => return Err(bad_value("`geometric` or `deterministic`")),
                    };
                }
                "measure_decision_times" => {
                    measure_decision_times =
                        value.parse().map_err(|_| bad_value("`true` or `false`"))?;
                }
                "histogram_metrics" => {
                    histogram_metrics =
                        value.parse().map_err(|_| bad_value("`true` or `false`"))?;
                }
                "scenario.server_ids" => scenario_server_ids = Some(parse_u32_list(value)?),
                "scenario.dispatcher_ids" => {
                    scenario_dispatcher_ids = Some(parse_u32_list(value)?);
                }
                "workload.dispatcher_ids" => {
                    workload_dispatcher_ids = Some(parse_u32_list(value)?);
                }
                _ if key.starts_with("scenario.") => {
                    scenario_lines.push_str(&key["scenario.".len()..]);
                    scenario_lines.push_str(" = ");
                    scenario_lines.push_str(value);
                    scenario_lines.push('\n');
                }
                _ if key.starts_with("workload.") => {
                    workload_lines.push_str(&key["workload.".len()..]);
                    workload_lines.push_str(" = ");
                    workload_lines.push_str(value);
                    workload_lines.push('\n');
                }
                _ => {
                    return Err(SimError::InvalidConfig(format!(
                        "config line {}: unknown key {key:?}",
                        lineno + 1
                    )));
                }
            }
        }
        let missing = |key: &str| {
            SimError::InvalidConfig(format!("config is missing the required `{key}` key"))
        };
        let spec = ClusterSpec::from_rates(rates.ok_or_else(|| missing("rates"))?)
            .map_err(|e| SimError::InvalidConfig(format!("config `rates`: {e}")))?;
        let mut scenario = ScenarioSpec::from_key_values(&scenario_lines)?;
        scenario.server_ids = scenario_server_ids;
        scenario.dispatcher_ids = scenario_dispatcher_ids;
        let mut workload = WorkloadSpec::from_key_values(&workload_lines)?;
        workload.dispatcher_ids = workload_dispatcher_ids;
        Ok(SimConfig {
            spec,
            num_dispatchers: dispatchers.ok_or_else(|| missing("dispatchers"))?,
            rounds: rounds.ok_or_else(|| missing("rounds"))?,
            warmup_rounds,
            seed: seed.ok_or_else(|| missing("seed"))?,
            arrivals: arrivals.ok_or_else(|| missing("arrivals"))?,
            services,
            measure_decision_times,
            histogram_metrics,
            scenario,
            workload,
        })
    }

    /// A structural 64-bit digest of every field of the configuration,
    /// computed by chaining splitmix64 finalizers over the field values
    /// (floats by their IEEE bit patterns, enums by discriminant tag plus
    /// payload, collections length-prefixed). The digest is a pure function
    /// of the value — identical across processes, hosts, and compilations —
    /// and is what the process fabric stamps into every shard-report frame
    /// so the orchestrator can reject a report produced from a different
    /// configuration than the one it distributed.
    ///
    /// Unlike the `key = value` wire form this covers replay traces too, so
    /// in-process sharded runs can stamp any configuration.
    pub fn digest(&self) -> u64 {
        use crate::scenario::StalenessSpec;
        use crate::workload::ModulationSpec;
        use scd_model::streams::splitmix64_mix;
        fn mix(h: u64, v: u64) -> u64 {
            splitmix64_mix(h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
        }
        fn mix_f64(h: u64, v: f64) -> u64 {
            mix(h, v.to_bits())
        }
        fn mix_opt_u64(h: u64, v: Option<u64>) -> u64 {
            match v {
                None => mix(h, 0),
                Some(v) => mix(mix(h, 1), v),
            }
        }
        fn mix_opt_ids(h: u64, ids: Option<&Vec<u32>>) -> u64 {
            match ids {
                None => mix(h, 0),
                Some(ids) => ids
                    .iter()
                    .fold(mix(mix(h, 1), ids.len() as u64), |h, &id| mix(h, id as u64)),
            }
        }
        let mut h = mix(0x5343_4446_4947_0001, self.spec.rates().len() as u64);
        for &r in self.spec.rates() {
            h = mix_f64(h, r);
        }
        h = mix(h, self.num_dispatchers as u64);
        h = mix(h, self.rounds);
        h = mix(h, self.warmup_rounds);
        h = mix(h, self.seed);
        h = match &self.arrivals {
            ArrivalSpec::PoissonOfferedLoad { offered_load } => mix_f64(mix(h, 0), *offered_load),
            ArrivalSpec::PoissonRates { rates } => rates
                .iter()
                .fold(mix(mix(h, 1), rates.len() as u64), |h, &r| mix_f64(h, r)),
            ArrivalSpec::Deterministic { jobs_per_round } => mix(mix(h, 2), *jobs_per_round),
        };
        h = mix(
            h,
            match self.services {
                ServiceModel::Geometric => 0,
                ServiceModel::Deterministic => 1,
            },
        );
        h = mix(h, self.measure_decision_times as u64);
        // Mixed only when set: a false flag leaves the digest identical to
        // one computed before the field existed, so fabric workers built at
        // different times agree on every pre-existing configuration.
        if self.histogram_metrics {
            h = mix(h, 0x4849_5354); // "HIST"
        }
        let sc = &self.scenario;
        h = mix_f64(h, sc.server_fail_rate);
        h = mix_f64(h, sc.server_repair_rate);
        h = mix_f64(h, sc.dispatcher_fail_rate);
        h = mix_f64(h, sc.dispatcher_repair_rate);
        h = match sc.staleness {
            StalenessSpec::Fresh => mix(h, 0),
            StalenessSpec::Fixed { k } => mix(mix(h, 1), k),
            StalenessSpec::UniformPerRound { max_k } => mix(mix(h, 2), max_k),
        };
        h = mix_f64(h, sc.probe_loss_rate);
        h = mix_opt_u64(h, sc.seed);
        h = mix_opt_ids(h, sc.server_ids.as_ref());
        h = mix_opt_ids(h, sc.dispatcher_ids.as_ref());
        let wl = &self.workload;
        h = match &wl.modulation {
            ModulationSpec::None => mix(h, 0),
            ModulationSpec::Mmpp { phases } => phases
                .iter()
                .fold(mix(mix(h, 1), phases.len() as u64), |h, p| {
                    mix_f64(mix_f64(h, p.rate_multiplier), p.switch_prob)
                }),
            ModulationSpec::Diurnal { period, amplitude } => {
                mix_f64(mix(mix(h, 2), *period), *amplitude)
            }
            ModulationSpec::FlashCrowd {
                every,
                duration,
                magnitude,
            } => mix_f64(mix(mix(mix(h, 3), *every), *duration), *magnitude),
        };
        h = mix(h, wl.classes.len() as u64);
        for class in &wl.classes {
            h = mix_f64(mix(h, class.size), class.weight);
        }
        h = match &wl.replay {
            None => mix(h, 0),
            Some(trace) => {
                let mut h = mix(
                    mix(mix(h, 1), trace.num_dispatchers() as u64),
                    trace.rounds(),
                );
                for round in 0..trace.rounds() {
                    for d in 0..trace.num_dispatchers() {
                        h = mix(h, trace.count(round, d));
                    }
                }
                h
            }
        };
        h = mix_opt_u64(h, wl.seed);
        h = mix_opt_ids(h, wl.dispatcher_ids.as_ref());
        h
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    spec: ClusterSpec,
    num_dispatchers: usize,
    rounds: u64,
    warmup_rounds: u64,
    seed: u64,
    arrivals: ArrivalSpec,
    services: ServiceModel,
    measure_decision_times: bool,
    histogram_metrics: bool,
    scenario: ScenarioSpec,
    workload: WorkloadSpec,
}

impl SimConfigBuilder {
    /// Creates a builder with sensible defaults: one dispatcher, 10 000
    /// rounds, no warm-up, seed 0, offered load 0.9, geometric services,
    /// no faults.
    pub fn new(spec: ClusterSpec) -> Self {
        SimConfigBuilder {
            spec,
            num_dispatchers: 1,
            rounds: 10_000,
            warmup_rounds: 0,
            seed: 0,
            arrivals: ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 },
            services: ServiceModel::Geometric,
            measure_decision_times: false,
            histogram_metrics: false,
            scenario: ScenarioSpec::default(),
            workload: WorkloadSpec::default(),
        }
    }

    /// Sets the number of dispatchers.
    pub fn dispatchers(mut self, m: usize) -> Self {
        self.num_dispatchers = m;
        self
    }

    /// Sets the number of simulated rounds.
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the number of warm-up rounds excluded from statistics.
    pub fn warmup_rounds(mut self, warmup: u64) -> Self {
        self.warmup_rounds = warmup;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the arrival specification.
    pub fn arrivals(mut self, arrivals: ArrivalSpec) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Sets the service model.
    pub fn services(mut self, services: ServiceModel) -> Self {
        self.services = services;
        self
    }

    /// Enables wall-clock timing of every dispatching decision.
    pub fn measure_decision_times(mut self, enable: bool) -> Self {
        self.measure_decision_times = enable;
        self
    }

    /// Enables histogram-only queue metrics (no per-server metric vectors;
    /// see [`SimConfig::histogram_metrics`]). Intended for
    /// mean-field-scale runs.
    pub fn histogram_metrics(mut self, enable: bool) -> Self {
        self.histogram_metrics = enable;
        self
    }

    /// Sets the fault/churn/staleness scenario.
    pub fn scenario(mut self, scenario: ScenarioSpec) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets the time-varying / trace-driven workload.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`](crate::engine::SimError) when the
    /// system has zero dispatchers, zero rounds, a warm-up at least as long
    /// as the run, or a scenario with out-of-range rates or mismatched id
    /// maps — degenerate inputs fail here, at configuration time, not
    /// inside `Simulation::new`.
    pub fn build(self) -> Result<SimConfig, crate::engine::SimError> {
        use crate::engine::SimError;
        if self.num_dispatchers == 0 {
            return Err(SimError::InvalidConfig(
                "the system must contain at least one dispatcher".into(),
            ));
        }
        if self.rounds == 0 {
            return Err(SimError::InvalidConfig(
                "the simulation must run for at least one round".into(),
            ));
        }
        if self.warmup_rounds >= self.rounds {
            return Err(SimError::InvalidConfig(format!(
                "warm-up ({}) must be shorter than the run ({})",
                self.warmup_rounds, self.rounds
            )));
        }
        self.scenario
            .validate(self.spec.num_servers(), self.num_dispatchers)?;
        self.arrivals.validate(self.num_dispatchers)?;
        self.workload.validate(
            &self.arrivals,
            self.num_dispatchers,
            self.rounds,
            self.spec.total_rate(),
        )?;
        let config = SimConfig {
            spec: self.spec,
            num_dispatchers: self.num_dispatchers,
            rounds: self.rounds,
            warmup_rounds: self.warmup_rounds,
            seed: self.seed,
            arrivals: self.arrivals,
            services: self.services,
            measure_decision_times: self.measure_decision_times,
            histogram_metrics: self.histogram_metrics,
            scenario: self.scenario,
            workload: self.workload,
        };
        config.validate_scale()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::from_rates(vec![4.0, 2.0, 1.0, 1.0]).unwrap()
    }

    #[test]
    fn builder_produces_requested_configuration() {
        let config = SimConfig::builder(spec())
            .dispatchers(3)
            .rounds(500)
            .warmup_rounds(100)
            .seed(99)
            .arrivals(ArrivalSpec::Deterministic { jobs_per_round: 2 })
            .services(ServiceModel::Deterministic)
            .measure_decision_times(true)
            .build()
            .unwrap();
        assert_eq!(config.num_dispatchers, 3);
        assert_eq!(config.rounds, 500);
        assert_eq!(config.warmup_rounds, 100);
        assert_eq!(config.seed, 99);
        assert_eq!(config.services, ServiceModel::Deterministic);
        assert!(config.measure_decision_times);
        assert_eq!(config.num_servers(), 4);
        // Deterministic 2 jobs × 3 dispatchers = 6 jobs/round vs capacity 8.
        assert!((config.offered_load() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_degenerate_configurations() {
        assert!(SimConfig::builder(spec()).dispatchers(0).build().is_err());
        assert!(SimConfig::builder(spec()).rounds(0).build().is_err());
        assert!(SimConfig::builder(spec())
            .rounds(10)
            .warmup_rounds(10)
            .build()
            .is_err());
        // Scenario validation happens at build time too.
        assert!(SimConfig::builder(spec())
            .scenario(ScenarioSpec {
                server_fail_rate: 1.5,
                ..ScenarioSpec::default()
            })
            .build()
            .is_err());
        assert!(SimConfig::builder(spec())
            .dispatchers(2)
            .scenario(ScenarioSpec {
                dispatcher_ids: Some(vec![0]),
                ..ScenarioSpec::default()
            })
            .build()
            .is_err());
        // Arrival and workload validation happen at build time too.
        assert!(SimConfig::builder(spec())
            .dispatchers(2)
            .arrivals(ArrivalSpec::PoissonRates { rates: vec![1.0] })
            .build()
            .is_err());
        assert!(SimConfig::builder(spec())
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: -1.0 })
            .build()
            .is_err());
        assert!(SimConfig::builder(spec())
            .workload(WorkloadSpec {
                modulation: crate::workload::ModulationSpec::Diurnal {
                    period: 0,
                    amplitude: 0.5,
                },
                ..WorkloadSpec::default()
            })
            .build()
            .is_err());
        // An active workload over deterministic arrivals is rejected.
        assert!(SimConfig::builder(spec())
            .arrivals(ArrivalSpec::Deterministic { jobs_per_round: 2 })
            .workload(WorkloadSpec {
                modulation: crate::workload::ModulationSpec::Diurnal {
                    period: 100,
                    amplitude: 0.5,
                },
                ..WorkloadSpec::default()
            })
            .build()
            .is_err());
    }

    #[test]
    fn builder_accepts_and_carries_a_workload() {
        let workload = WorkloadSpec {
            modulation: crate::workload::ModulationSpec::Diurnal {
                period: 200,
                amplitude: 0.3,
            },
            ..WorkloadSpec::default()
        };
        let config = SimConfig::builder(spec())
            .dispatchers(2)
            .workload(workload.clone())
            .build()
            .unwrap();
        assert_eq!(config.workload, workload);
        // The default is the inert workload.
        let plain = SimConfig::builder(spec()).build().unwrap();
        assert!(plain.workload.is_inert());
    }

    #[test]
    fn builder_accepts_and_carries_a_scenario() {
        let scenario = ScenarioSpec {
            server_fail_rate: 0.01,
            server_repair_rate: 0.2,
            ..ScenarioSpec::default()
        };
        let config = SimConfig::builder(spec())
            .dispatchers(2)
            .scenario(scenario.clone())
            .build()
            .unwrap();
        assert_eq!(config.scenario, scenario);
        // The default is the inert scenario.
        let plain = SimConfig::builder(spec()).build().unwrap();
        assert!(plain.scenario.is_inert());
    }

    #[test]
    fn key_values_round_trip_is_exact() {
        // A config exercising every wire-format branch: non-trivial floats
        // (0.1 has no finite binary expansion — shortest-repr Display must
        // still round-trip it bit for bit), an active scenario with id
        // maps, and an active workload.
        let config = SimConfig {
            spec: ClusterSpec::from_rates(vec![4.0, 0.1, 1.0 / 3.0, 2.5]).unwrap(),
            num_dispatchers: 3,
            rounds: 500,
            warmup_rounds: 100,
            seed: 0xDEAD_BEEF_0BAD_F00D,
            arrivals: ArrivalSpec::PoissonOfferedLoad {
                offered_load: 0.855,
            },
            services: ServiceModel::Deterministic,
            measure_decision_times: true,
            histogram_metrics: true,
            scenario: ScenarioSpec {
                server_fail_rate: 0.01,
                server_repair_rate: 0.2,
                staleness: crate::scenario::StalenessSpec::UniformPerRound { max_k: 3 },
                probe_loss_rate: 0.05,
                seed: Some(42),
                server_ids: Some(vec![0, 4, 8, 12]),
                dispatcher_ids: Some(vec![1, 4]),
                ..ScenarioSpec::default()
            },
            workload: WorkloadSpec {
                modulation: crate::workload::ModulationSpec::Diurnal {
                    period: 200,
                    amplitude: 0.3,
                },
                classes: vec![crate::workload::JobClass {
                    size: 4,
                    weight: 0.25,
                }],
                seed: Some(7),
                dispatcher_ids: Some(vec![1, 4]),
                ..WorkloadSpec::default()
            },
        };
        let text = config.to_key_values().unwrap();
        let back = SimConfig::from_key_values(&text).unwrap();
        assert_eq!(back, config);
        // The minimal config round-trips too (defaults omitted from text).
        let plain = SimConfig::builder(spec()).build().unwrap();
        let text = plain.to_key_values().unwrap();
        assert_eq!(SimConfig::from_key_values(&text).unwrap(), plain);
        // Other arrival kinds take the other wire branches.
        for arrivals in [
            ArrivalSpec::PoissonRates {
                rates: vec![0.5, 1.25],
            },
            ArrivalSpec::Deterministic { jobs_per_round: 2 },
        ] {
            let c = SimConfig::builder(spec())
                .dispatchers(2)
                .arrivals(arrivals)
                .build()
                .unwrap();
            let text = c.to_key_values().unwrap();
            assert_eq!(SimConfig::from_key_values(&text).unwrap(), c);
        }
    }

    #[test]
    fn key_values_reject_malformed_input() {
        let base = SimConfig::builder(spec()).build().unwrap();
        let text = base.to_key_values().unwrap();
        // Dropping a required key fails with a named-key error.
        let without_rates: String = text
            .lines()
            .filter(|l| !l.starts_with("rates"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = SimConfig::from_key_values(&without_rates).unwrap_err();
        assert!(err.to_string().contains("rates"), "{err}");
        // Unknown keys, bad shapes, and bad nested keys are all rejected.
        assert!(SimConfig::from_key_values("bogus = 1").is_err());
        assert!(SimConfig::from_key_values("rates 1,2").is_err());
        assert!(SimConfig::from_key_values(&format!("{text}arrivals = warp:9")).is_err());
        assert!(SimConfig::from_key_values(&format!("{text}scenario.bogus = 1")).is_err());
        assert!(SimConfig::from_key_values(&format!("{text}workload.bogus = 1")).is_err());
        // A replay trace has no wire form.
        let mut with_replay = base;
        with_replay.workload.replay = Some(crate::workload::ArrivalTrace::new(1, 10_000));
        assert!(with_replay.to_key_values().is_err());
    }

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        let base = SimConfig::builder(spec())
            .dispatchers(2)
            .rounds(100)
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(base.digest(), base.clone().digest());
        // Every field perturbation moves the digest.
        let mut seed = base.clone();
        seed.seed ^= 1;
        let mut rounds = base.clone();
        rounds.rounds += 1;
        let mut load = base.clone();
        load.arrivals = ArrivalSpec::PoissonOfferedLoad {
            offered_load: 0.900000001,
        };
        let mut services = base.clone();
        services.services = ServiceModel::Deterministic;
        let mut scenario = base.clone();
        scenario.scenario.server_ids = Some(vec![0, 1, 2, 3]);
        let mut workload = base.clone();
        workload.workload.seed = Some(0);
        let mut replay = base.clone();
        replay.workload.replay = Some(crate::workload::ArrivalTrace::new(2, 100));
        let digests: Vec<u64> = [
            &base, &seed, &rounds, &load, &services, &scenario, &workload, &replay,
        ]
        .iter()
        .map(|c| c.digest())
        .collect();
        for i in 0..digests.len() {
            for j in (i + 1)..digests.len() {
                assert_ne!(digests[i], digests[j], "configs {i} and {j} collide");
            }
        }
        // The digest survives the wire: parse(to_key_values) has the same
        // digest — the worker-side check the orchestrator relies on.
        let text = base.to_key_values().unwrap();
        assert_eq!(
            SimConfig::from_key_values(&text).unwrap().digest(),
            base.digest()
        );
    }

    #[test]
    fn histogram_metrics_flag_is_inert_on_the_wire_and_digest_when_unset() {
        let plain = SimConfig::builder(spec()).build().unwrap();
        assert!(!plain.histogram_metrics);
        let mut flagged = plain.clone();
        flagged.histogram_metrics = true;
        // Unset: the key is absent from the wire text (old parsers keep
        // working) and the digest matches the pre-flag computation. Set:
        // both move, and the round trip preserves the flag.
        assert!(!plain.to_key_values().unwrap().contains("histogram_metrics"));
        assert!(flagged
            .to_key_values()
            .unwrap()
            .contains("histogram_metrics"));
        assert_ne!(plain.digest(), flagged.digest());
        let text = flagged.to_key_values().unwrap();
        assert_eq!(SimConfig::from_key_values(&text).unwrap(), flagged);
        // The builder carries the flag too.
        let built = SimConfig::builder(spec())
            .histogram_metrics(true)
            .build()
            .unwrap();
        assert!(built.histogram_metrics);
    }

    #[test]
    fn over_scale_configurations_are_rejected_with_sized_messages() {
        // n · m beyond MAX_STATE_CELLS: 2^16 servers × 2^16 dispatchers.
        let rates = vec![1.0; 1 << 16];
        let err = SimConfig::builder(ClusterSpec::from_rates(rates.clone()).unwrap())
            .dispatchers(1 << 16)
            .build()
            .unwrap_err();
        assert!(matches!(err, crate::engine::SimError::InvalidConfig(_)));
        assert!(err.to_string().contains("state cells"), "{err}");
        // A mean-field-scale single-dispatcher system passes comfortably.
        let big = SimConfig::builder(ClusterSpec::from_rates(rates).unwrap())
            .dispatchers(16)
            .build()
            .unwrap();
        assert!(big.estimated_memory_bytes() < SimConfig::MAX_ESTIMATED_MEMORY_BYTES);
        // Histogram mode strictly lowers the estimate.
        let mut slim = big.clone();
        slim.histogram_metrics = true;
        assert!(slim.estimated_memory_bytes() < big.estimated_memory_bytes());
        // Memory ceiling: 10⁶ servers × 2140 dispatchers stays just under
        // the cell cap (2.14e9 < 2^31) but the n·m policy-sampler term
        // pushes the estimate past 32 GiB.
        let err = SimConfig::builder(ClusterSpec::from_rates(vec![1.0; 1_000_000]).unwrap())
            .dispatchers(2140)
            .build()
            .unwrap_err();
        assert!(matches!(err, crate::engine::SimError::InvalidConfig(_)));
        assert!(err.to_string().contains("estimated memory"), "{err}");
    }

    #[test]
    fn paper_setup_matches_requested_shape() {
        let profile = RateProfile::paper_moderate();
        let config = SimConfig::paper_setup(100, 10, 0.95, &profile, 1000, 7).unwrap();
        assert_eq!(config.num_servers(), 100);
        assert_eq!(config.num_dispatchers, 10);
        assert_eq!(config.rounds, 1000);
        assert!((config.offered_load() - 0.95).abs() < 1e-12);
        // Same seed → same cluster; different seed → (almost surely) different.
        let again = SimConfig::paper_setup(100, 10, 0.95, &profile, 1000, 7).unwrap();
        assert_eq!(config.spec, again.spec);
        let other = SimConfig::paper_setup(100, 10, 0.95, &profile, 1000, 8).unwrap();
        assert_ne!(config.spec, other.spec);
    }
}
