//! Simulation configuration.

use crate::arrivals::ArrivalSpec;
use crate::scenario::ScenarioSpec;
use crate::services::ServiceModel;
use crate::workload::WorkloadSpec;
use scd_model::{ClusterSpec, ModelError, RateProfile};
use serde::{Deserialize, Serialize};

/// Complete description of one simulation run (one cluster, one arrival
/// pattern, one policy will be plugged in by the engine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The cluster (per-server service rates).
    pub spec: ClusterSpec,
    /// Number of dispatchers `m`.
    pub num_dispatchers: usize,
    /// Total number of simulated rounds.
    pub rounds: u64,
    /// Rounds at the beginning of the run excluded from all statistics
    /// (transient warm-up).
    pub warmup_rounds: u64,
    /// Master seed; every stochastic stream in the run derives from it.
    pub seed: u64,
    /// The arrival process.
    pub arrivals: ArrivalSpec,
    /// The service process.
    pub services: ServiceModel,
    /// When true the engine wall-clock-times every dispatching decision
    /// (needed for the Figure 5/8 reproductions; adds measurement overhead).
    pub measure_decision_times: bool,
    /// The fault/churn/staleness scenario; the default is "no faults",
    /// which runs the fair-weather fast path bit-for-bit.
    pub scenario: ScenarioSpec,
    /// The time-varying / trace-driven workload; the default is inert
    /// (stationary), which reproduces the plain arrival path bit-for-bit.
    pub workload: WorkloadSpec,
}

impl SimConfig {
    /// Starts a builder for the given cluster.
    pub fn builder(spec: ClusterSpec) -> SimConfigBuilder {
        SimConfigBuilder::new(spec)
    }

    /// Convenience constructor matching the paper's evaluation setup: `n`
    /// servers with rates drawn from `profile`, `m` dispatchers with equal
    /// Poisson arrival rates calibrated to the offered load `ρ`, geometric
    /// services.
    ///
    /// The cluster draw uses a seed derived from `seed` so that the same
    /// `(n, profile, seed)` triple always produces the same cluster while
    /// different seeds produce different clusters.
    ///
    /// # Errors
    /// Returns an error if the profile produces an invalid cluster.
    pub fn paper_setup(
        n: usize,
        m: usize,
        offered_load: f64,
        profile: &RateProfile,
        rounds: u64,
        seed: u64,
    ) -> Result<SimConfig, ModelError> {
        use rand::SeedableRng;
        let mut cluster_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC1_05_7E_12);
        let spec = profile.materialize(n, &mut cluster_rng)?;
        Ok(SimConfig {
            spec,
            num_dispatchers: m,
            rounds,
            warmup_rounds: 0,
            seed,
            arrivals: ArrivalSpec::PoissonOfferedLoad { offered_load },
            services: ServiceModel::Geometric,
            measure_decision_times: false,
            scenario: ScenarioSpec::default(),
            workload: WorkloadSpec::default(),
        })
    }

    /// The offered load `ρ` this configuration induces.
    ///
    /// # Panics
    /// Panics on an arrival spec that fails validation — configurations
    /// produced by the builder or accepted by `Simulation::new` are always
    /// valid here.
    pub fn offered_load(&self) -> f64 {
        self.arrivals
            .offered_load(self.num_dispatchers, self.spec.total_rate())
            .expect("validated configuration")
    }

    /// Number of servers `n`.
    pub fn num_servers(&self) -> usize {
        self.spec.num_servers()
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    spec: ClusterSpec,
    num_dispatchers: usize,
    rounds: u64,
    warmup_rounds: u64,
    seed: u64,
    arrivals: ArrivalSpec,
    services: ServiceModel,
    measure_decision_times: bool,
    scenario: ScenarioSpec,
    workload: WorkloadSpec,
}

impl SimConfigBuilder {
    /// Creates a builder with sensible defaults: one dispatcher, 10 000
    /// rounds, no warm-up, seed 0, offered load 0.9, geometric services,
    /// no faults.
    pub fn new(spec: ClusterSpec) -> Self {
        SimConfigBuilder {
            spec,
            num_dispatchers: 1,
            rounds: 10_000,
            warmup_rounds: 0,
            seed: 0,
            arrivals: ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 },
            services: ServiceModel::Geometric,
            measure_decision_times: false,
            scenario: ScenarioSpec::default(),
            workload: WorkloadSpec::default(),
        }
    }

    /// Sets the number of dispatchers.
    pub fn dispatchers(mut self, m: usize) -> Self {
        self.num_dispatchers = m;
        self
    }

    /// Sets the number of simulated rounds.
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the number of warm-up rounds excluded from statistics.
    pub fn warmup_rounds(mut self, warmup: u64) -> Self {
        self.warmup_rounds = warmup;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the arrival specification.
    pub fn arrivals(mut self, arrivals: ArrivalSpec) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Sets the service model.
    pub fn services(mut self, services: ServiceModel) -> Self {
        self.services = services;
        self
    }

    /// Enables wall-clock timing of every dispatching decision.
    pub fn measure_decision_times(mut self, enable: bool) -> Self {
        self.measure_decision_times = enable;
        self
    }

    /// Sets the fault/churn/staleness scenario.
    pub fn scenario(mut self, scenario: ScenarioSpec) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets the time-varying / trace-driven workload.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`](crate::engine::SimError) when the
    /// system has zero dispatchers, zero rounds, a warm-up at least as long
    /// as the run, or a scenario with out-of-range rates or mismatched id
    /// maps — degenerate inputs fail here, at configuration time, not
    /// inside `Simulation::new`.
    pub fn build(self) -> Result<SimConfig, crate::engine::SimError> {
        use crate::engine::SimError;
        if self.num_dispatchers == 0 {
            return Err(SimError::InvalidConfig(
                "the system must contain at least one dispatcher".into(),
            ));
        }
        if self.rounds == 0 {
            return Err(SimError::InvalidConfig(
                "the simulation must run for at least one round".into(),
            ));
        }
        if self.warmup_rounds >= self.rounds {
            return Err(SimError::InvalidConfig(format!(
                "warm-up ({}) must be shorter than the run ({})",
                self.warmup_rounds, self.rounds
            )));
        }
        self.scenario
            .validate(self.spec.num_servers(), self.num_dispatchers)?;
        self.arrivals.validate(self.num_dispatchers)?;
        self.workload.validate(
            &self.arrivals,
            self.num_dispatchers,
            self.rounds,
            self.spec.total_rate(),
        )?;
        Ok(SimConfig {
            spec: self.spec,
            num_dispatchers: self.num_dispatchers,
            rounds: self.rounds,
            warmup_rounds: self.warmup_rounds,
            seed: self.seed,
            arrivals: self.arrivals,
            services: self.services,
            measure_decision_times: self.measure_decision_times,
            scenario: self.scenario,
            workload: self.workload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::from_rates(vec![4.0, 2.0, 1.0, 1.0]).unwrap()
    }

    #[test]
    fn builder_produces_requested_configuration() {
        let config = SimConfig::builder(spec())
            .dispatchers(3)
            .rounds(500)
            .warmup_rounds(100)
            .seed(99)
            .arrivals(ArrivalSpec::Deterministic { jobs_per_round: 2 })
            .services(ServiceModel::Deterministic)
            .measure_decision_times(true)
            .build()
            .unwrap();
        assert_eq!(config.num_dispatchers, 3);
        assert_eq!(config.rounds, 500);
        assert_eq!(config.warmup_rounds, 100);
        assert_eq!(config.seed, 99);
        assert_eq!(config.services, ServiceModel::Deterministic);
        assert!(config.measure_decision_times);
        assert_eq!(config.num_servers(), 4);
        // Deterministic 2 jobs × 3 dispatchers = 6 jobs/round vs capacity 8.
        assert!((config.offered_load() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_degenerate_configurations() {
        assert!(SimConfig::builder(spec()).dispatchers(0).build().is_err());
        assert!(SimConfig::builder(spec()).rounds(0).build().is_err());
        assert!(SimConfig::builder(spec())
            .rounds(10)
            .warmup_rounds(10)
            .build()
            .is_err());
        // Scenario validation happens at build time too.
        assert!(SimConfig::builder(spec())
            .scenario(ScenarioSpec {
                server_fail_rate: 1.5,
                ..ScenarioSpec::default()
            })
            .build()
            .is_err());
        assert!(SimConfig::builder(spec())
            .dispatchers(2)
            .scenario(ScenarioSpec {
                dispatcher_ids: Some(vec![0]),
                ..ScenarioSpec::default()
            })
            .build()
            .is_err());
        // Arrival and workload validation happen at build time too.
        assert!(SimConfig::builder(spec())
            .dispatchers(2)
            .arrivals(ArrivalSpec::PoissonRates { rates: vec![1.0] })
            .build()
            .is_err());
        assert!(SimConfig::builder(spec())
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: -1.0 })
            .build()
            .is_err());
        assert!(SimConfig::builder(spec())
            .workload(WorkloadSpec {
                modulation: crate::workload::ModulationSpec::Diurnal {
                    period: 0,
                    amplitude: 0.5,
                },
                ..WorkloadSpec::default()
            })
            .build()
            .is_err());
        // An active workload over deterministic arrivals is rejected.
        assert!(SimConfig::builder(spec())
            .arrivals(ArrivalSpec::Deterministic { jobs_per_round: 2 })
            .workload(WorkloadSpec {
                modulation: crate::workload::ModulationSpec::Diurnal {
                    period: 100,
                    amplitude: 0.5,
                },
                ..WorkloadSpec::default()
            })
            .build()
            .is_err());
    }

    #[test]
    fn builder_accepts_and_carries_a_workload() {
        let workload = WorkloadSpec {
            modulation: crate::workload::ModulationSpec::Diurnal {
                period: 200,
                amplitude: 0.3,
            },
            ..WorkloadSpec::default()
        };
        let config = SimConfig::builder(spec())
            .dispatchers(2)
            .workload(workload.clone())
            .build()
            .unwrap();
        assert_eq!(config.workload, workload);
        // The default is the inert workload.
        let plain = SimConfig::builder(spec()).build().unwrap();
        assert!(plain.workload.is_inert());
    }

    #[test]
    fn builder_accepts_and_carries_a_scenario() {
        let scenario = ScenarioSpec {
            server_fail_rate: 0.01,
            server_repair_rate: 0.2,
            ..ScenarioSpec::default()
        };
        let config = SimConfig::builder(spec())
            .dispatchers(2)
            .scenario(scenario.clone())
            .build()
            .unwrap();
        assert_eq!(config.scenario, scenario);
        // The default is the inert scenario.
        let plain = SimConfig::builder(spec()).build().unwrap();
        assert!(plain.scenario.is_inert());
    }

    #[test]
    fn paper_setup_matches_requested_shape() {
        let profile = RateProfile::paper_moderate();
        let config = SimConfig::paper_setup(100, 10, 0.95, &profile, 1000, 7).unwrap();
        assert_eq!(config.num_servers(), 100);
        assert_eq!(config.num_dispatchers, 10);
        assert_eq!(config.rounds, 1000);
        assert!((config.offered_load() - 0.95).abs() < 1e-12);
        // Same seed → same cluster; different seed → (almost surely) different.
        let again = SimConfig::paper_setup(100, 10, 0.95, &profile, 1000, 7).unwrap();
        assert_eq!(config.spec, again.spec);
        let other = SimConfig::paper_setup(100, 10, 0.95, &profile, 1000, 8).unwrap();
        assert_ne!(config.spec, other.spec);
    }
}
