//! Engine checkpoints: a serializable snapshot of a mid-run simulation.
//!
//! A checkpoint captures everything the round loop cannot re-derive at a
//! round boundary: the round counter, the RLE segment queues, the previous
//! round's snapshot (the delta baseline), the exact positions of the three
//! RNG stream families, every metrics accumulator, the scenario layer's
//! fault/staleness state, and one opaque state blob per dispatcher policy
//! (see [`DispatchPolicy::save_state`](scd_model::DispatchPolicy::save_state)).
//! Warm caches and argmin trees are deliberately **not** captured — they
//! are pure accelerators, rebuilt on restore from the captured state.
//!
//! The contract, pinned by the resume tests: a run resumed from a
//! checkpoint produces a report **bit-identical** to the uninterrupted
//! run, including every RNG draw after the checkpoint round.
//!
//! The wire form ([`EngineCheckpoint::to_bytes`]) reuses the fabric
//! codec's little-endian primitives and is what a v3 `Checkpoint` frame
//! carries as its state blob. Decoding is strict: truncation, lying
//! lengths, bad tag bytes and trailing bytes are all classified
//! [`CodecError`]s, never panics.

use crate::fabric::codec::{ByteReader, ByteWriter, CodecError};
use crate::report::DegradationMetrics;

/// Layout version of the serialized checkpoint; bumped on any change.
const CHECKPOINT_VERSION: u8 = 1;

/// Mid-run state of a response-time histogram.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct HistogramState {
    pub(crate) counts: Vec<u64>,
    pub(crate) count: u64,
    pub(crate) raw_sum: u128,
}

/// Mid-run state of the queue-length tracker (both metric modes).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TrackerState {
    pub(crate) num_servers: usize,
    pub(crate) per_server_sum: Vec<u128>,
    pub(crate) per_server_max: Vec<u64>,
    pub(crate) idle_rounds: Vec<u64>,
    pub(crate) occupancy: Vec<u64>,
    pub(crate) total_sum: u128,
    pub(crate) total_max: u64,
    pub(crate) rounds: u64,
}

/// Mid-run state of the decision-time histogram.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DecisionState {
    pub(crate) counts: Vec<u64>,
    pub(crate) count: u64,
    pub(crate) sum: f64,
    pub(crate) min: f64,
    pub(crate) max: f64,
}

/// Mid-run state of the scenario layer (present iff the run's scenario is
/// active).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ScenarioState {
    pub(crate) server_up: Vec<bool>,
    pub(crate) dispatcher_up: Vec<bool>,
    pub(crate) k_effs: Vec<u64>,
    pub(crate) ring: Option<Vec<Vec<u64>>>,
    pub(crate) degradation: DegradationMetrics,
    pub(crate) oracle_dropped: u64,
}

/// A serializable snapshot of a [`Simulation`](crate::Simulation) run at a
/// round boundary, sufficient to resume it bit-identically.
///
/// Produced by [`Simulation::checkpoint`](crate::Simulation::checkpoint)
/// and [`Simulation::run_with_checkpoints`](crate::Simulation::run_with_checkpoints);
/// consumed by [`Simulation::resume_from`](crate::Simulation::resume_from),
/// which refuses a checkpoint whose
/// [`config_digest`](EngineCheckpoint::config_digest) does not match the
/// resuming configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCheckpoint {
    pub(crate) config_digest: u64,
    pub(crate) round: u64,
    pub(crate) num_servers: usize,
    pub(crate) num_dispatchers: usize,
    pub(crate) queues: Vec<Vec<(u64, u64)>>,
    pub(crate) snapshot: Vec<u64>,
    pub(crate) arrival_rng: [u64; 4],
    pub(crate) service_rng: [u64; 4],
    pub(crate) policy_rngs: Vec<[u64; 4]>,
    pub(crate) response_times: HistogramState,
    pub(crate) tracker: TrackerState,
    pub(crate) decision_times: Option<DecisionState>,
    pub(crate) jobs_dispatched: u64,
    pub(crate) jobs_completed: u64,
    pub(crate) scenario: Option<ScenarioState>,
    pub(crate) policy_state: Vec<Vec<u8>>,
}

impl EngineCheckpoint {
    /// The round the checkpoint was taken at: the first round a resumed
    /// run executes.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Digest of the `SimConfig` the checkpointed run was configured with;
    /// resuming under any other configuration is refused.
    pub fn config_digest(&self) -> u64 {
        self.config_digest
    }

    /// Jobs dispatched on this shard so far — what a worker advertises in
    /// the progress heartbeat accompanying each checkpoint frame.
    pub fn jobs_dispatched(&self) -> u64 {
        self.jobs_dispatched
    }

    /// Serializes the checkpoint into the strict little-endian layout a v3
    /// `Checkpoint` frame carries.
    ///
    /// # Errors
    /// Returns [`CodecError::Malformed`] only if a length exceeds the u32
    /// wire width — impossible for checkpoints produced by the engine.
    pub fn to_bytes(&self) -> Result<Vec<u8>, CodecError> {
        let mut w = ByteWriter::new();
        w.u8(CHECKPOINT_VERSION);
        w.u64(self.config_digest);
        w.u64(self.round);
        w.len(self.num_servers)?;
        w.len(self.num_dispatchers)?;
        w.len(self.queues.len())?;
        for segments in &self.queues {
            w.len(segments.len())?;
            for &(arrival_round, count) in segments {
                w.u64(arrival_round);
                w.u64(count);
            }
        }
        w.counts(&self.snapshot)?;
        write_rng(&mut w, &self.arrival_rng);
        write_rng(&mut w, &self.service_rng);
        w.len(self.policy_rngs.len())?;
        for state in &self.policy_rngs {
            write_rng(&mut w, state);
        }
        w.counts(&self.response_times.counts)?;
        w.u64(self.response_times.count);
        w.u128(self.response_times.raw_sum);
        let t = &self.tracker;
        w.len(t.num_servers)?;
        w.len(t.per_server_sum.len())?;
        for &sum in &t.per_server_sum {
            w.u128(sum);
        }
        w.counts(&t.per_server_max)?;
        w.counts(&t.idle_rounds)?;
        w.counts(&t.occupancy)?;
        w.u128(t.total_sum);
        w.u64(t.total_max);
        w.u64(t.rounds);
        match &self.decision_times {
            None => w.u8(0),
            Some(d) => {
                w.u8(1);
                w.u64(d.count);
                w.f64(d.sum);
                w.f64(d.min);
                w.f64(d.max);
                w.counts(&d.counts)?;
            }
        }
        w.u64(self.jobs_dispatched);
        w.u64(self.jobs_completed);
        match &self.scenario {
            None => w.u8(0),
            Some(s) => {
                w.u8(1);
                write_bools(&mut w, &s.server_up)?;
                write_bools(&mut w, &s.dispatcher_up)?;
                w.counts(&s.k_effs)?;
                match &s.ring {
                    None => w.u8(0),
                    Some(ring) => {
                        w.u8(1);
                        w.len(ring.len())?;
                        for row in ring {
                            w.counts(row)?;
                        }
                    }
                }
                let d = &s.degradation;
                for v in [
                    d.server_down_rounds,
                    d.dispatcher_offline_rounds,
                    d.arrivals_lost,
                    d.probes_dropped,
                    d.stale_decision_rounds,
                    d.herding_rounds,
                    d.shards_lost,
                    d.rounds_lost,
                    d.checkpoints_taken,
                    d.rounds_replayed,
                ] {
                    w.u64(v);
                }
                w.u64(s.oracle_dropped);
            }
        }
        w.len(self.policy_state.len())?;
        for blob in &self.policy_state {
            w.len(blob.len())?;
            w.bytes(blob);
        }
        Ok(w.into_bytes())
    }

    /// Deserializes a checkpoint produced by
    /// [`to_bytes`](EngineCheckpoint::to_bytes).
    ///
    /// Strict: unknown layout versions, truncation, invalid tag bytes and
    /// trailing bytes are all rejected. Cross-field consistency (vector
    /// widths against the resuming configuration) is checked by
    /// [`Simulation::resume_from`](crate::Simulation::resume_from), not
    /// here.
    ///
    /// # Errors
    /// A classified [`CodecError`]; never panics on any input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let version = r.u8()?;
        if version != CHECKPOINT_VERSION {
            return Err(CodecError::UnsupportedVersion { got: version });
        }
        let config_digest = r.u64()?;
        let round = r.u64()?;
        let num_servers = r.len()?;
        let num_dispatchers = r.len()?;
        let num_queues = r.len()?;
        let mut queues = Vec::with_capacity(bounded(num_queues, &r));
        for _ in 0..num_queues {
            let num_segments = r.len()?;
            let mut segments = Vec::with_capacity(bounded(num_segments, &r));
            for _ in 0..num_segments {
                let arrival_round = r.u64()?;
                let count = r.u64()?;
                segments.push((arrival_round, count));
            }
            queues.push(segments);
        }
        let snapshot = r.counts()?;
        let arrival_rng = read_rng(&mut r)?;
        let service_rng = read_rng(&mut r)?;
        let num_policy_rngs = r.len()?;
        let mut policy_rngs = Vec::with_capacity(bounded(num_policy_rngs, &r));
        for _ in 0..num_policy_rngs {
            policy_rngs.push(read_rng(&mut r)?);
        }
        let response_times = HistogramState {
            counts: r.counts()?,
            count: r.u64()?,
            raw_sum: r.u128()?,
        };
        let tracker_servers = r.len()?;
        let num_sums = r.len()?;
        let mut per_server_sum = Vec::with_capacity(bounded(num_sums, &r));
        for _ in 0..num_sums {
            per_server_sum.push(r.u128()?);
        }
        let tracker = TrackerState {
            num_servers: tracker_servers,
            per_server_sum,
            per_server_max: r.counts()?,
            idle_rounds: r.counts()?,
            occupancy: r.counts()?,
            total_sum: r.u128()?,
            total_max: r.u64()?,
            rounds: r.u64()?,
        };
        let decision_times = match r.u8()? {
            0 => None,
            1 => Some(DecisionState {
                count: r.u64()?,
                sum: r.f64()?,
                min: r.f64()?,
                max: r.f64()?,
                counts: r.counts()?,
            }),
            tag => {
                return Err(CodecError::Malformed(format!(
                    "decision-time option tag must be 0 or 1, got {tag}"
                )));
            }
        };
        let jobs_dispatched = r.u64()?;
        let jobs_completed = r.u64()?;
        let scenario = match r.u8()? {
            0 => None,
            1 => {
                let server_up = read_bools(&mut r)?;
                let dispatcher_up = read_bools(&mut r)?;
                let k_effs = r.counts()?;
                let ring = match r.u8()? {
                    0 => None,
                    1 => {
                        let depth = r.len()?;
                        let mut ring = Vec::with_capacity(bounded(depth, &r));
                        for _ in 0..depth {
                            ring.push(r.counts()?);
                        }
                        Some(ring)
                    }
                    tag => {
                        return Err(CodecError::Malformed(format!(
                            "ring option tag must be 0 or 1, got {tag}"
                        )));
                    }
                };
                let degradation = DegradationMetrics {
                    server_down_rounds: r.u64()?,
                    dispatcher_offline_rounds: r.u64()?,
                    arrivals_lost: r.u64()?,
                    probes_dropped: r.u64()?,
                    stale_decision_rounds: r.u64()?,
                    herding_rounds: r.u64()?,
                    shards_lost: r.u64()?,
                    rounds_lost: r.u64()?,
                    checkpoints_taken: r.u64()?,
                    rounds_replayed: r.u64()?,
                };
                let oracle_dropped = r.u64()?;
                Some(ScenarioState {
                    server_up,
                    dispatcher_up,
                    k_effs,
                    ring,
                    degradation,
                    oracle_dropped,
                })
            }
            tag => {
                return Err(CodecError::Malformed(format!(
                    "scenario option tag must be 0 or 1, got {tag}"
                )));
            }
        };
        let num_blobs = r.len()?;
        let mut policy_state = Vec::with_capacity(bounded(num_blobs, &r));
        for _ in 0..num_blobs {
            let len = r.len()?;
            policy_state.push(r.take(len)?.to_vec());
        }
        if r.remaining() != 0 {
            return Err(CodecError::Malformed(format!(
                "{} unread bytes after the last checkpoint field",
                r.remaining()
            )));
        }
        Ok(EngineCheckpoint {
            config_digest,
            round,
            num_servers,
            num_dispatchers,
            queues,
            snapshot,
            arrival_rng,
            service_rng,
            policy_rngs,
            response_times,
            tracker,
            decision_times,
            jobs_dispatched,
            jobs_completed,
            scenario,
            policy_state,
        })
    }
}

fn write_rng(w: &mut ByteWriter, state: &[u64; 4]) {
    for &word in state {
        w.u64(word);
    }
}

fn read_rng(r: &mut ByteReader<'_>) -> Result<[u64; 4], CodecError> {
    Ok([r.u64()?, r.u64()?, r.u64()?, r.u64()?])
}

fn write_bools(w: &mut ByteWriter, bools: &[bool]) -> Result<(), CodecError> {
    w.len(bools.len())?;
    for &b in bools {
        w.u8(u8::from(b));
    }
    Ok(())
}

fn read_bools(r: &mut ByteReader<'_>) -> Result<Vec<bool>, CodecError> {
    let len = r.len()?;
    let bytes = r.take(len)?;
    bytes
        .iter()
        .map(|&b| match b {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Malformed(format!(
                "bool byte must be 0 or 1, got {other}"
            ))),
        })
        .collect()
}

/// Caps a declared element count by what the remaining bytes could
/// possibly hold, so a lying length prefix cannot trigger a giant
/// pre-allocation (each element is at least one byte on the wire).
fn bounded(declared: usize, r: &ByteReader<'_>) -> usize {
    declared.min(r.remaining())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> EngineCheckpoint {
        EngineCheckpoint {
            config_digest: 0xFEED_FACE_CAFE_BEEF,
            round: 120,
            num_servers: 3,
            num_dispatchers: 2,
            queues: vec![vec![(100, 2), (119, 1)], vec![], vec![(118, 5)]],
            snapshot: vec![3, 0, 5],
            arrival_rng: [1, 2, 3, 4],
            service_rng: [5, 6, 7, 8],
            policy_rngs: vec![[9, 10, 11, 12], [13, 14, 15, 16]],
            response_times: HistogramState {
                counts: vec![10, 4, 1],
                count: 15,
                raw_sum: 1u128 << 70,
            },
            tracker: TrackerState {
                num_servers: 3,
                per_server_sum: vec![100, 0, 77],
                per_server_max: vec![9, 0, 6],
                idle_rounds: vec![1, 120, 0],
                occupancy: vec![50, 40, 30],
                total_sum: 177,
                total_max: 15,
                rounds: 120,
            },
            decision_times: Some(DecisionState {
                counts: vec![2, 0, 1],
                count: 3,
                sum: 4.5,
                min: 0.25,
                max: f64::NAN,
            }),
            jobs_dispatched: 240,
            jobs_completed: 232,
            scenario: Some(ScenarioState {
                server_up: vec![true, false, true],
                dispatcher_up: vec![true, true],
                k_effs: vec![0, 2],
                ring: Some(vec![vec![1, 2, 3], vec![4, 5, 6]]),
                degradation: DegradationMetrics {
                    server_down_rounds: 40,
                    arrivals_lost: 7,
                    ..DegradationMetrics::default()
                },
                oracle_dropped: 11,
            }),
            policy_state: vec![vec![1, 2, 3], vec![]],
        }
    }

    #[test]
    fn checkpoint_round_trips_bit_for_bit() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.to_bytes().unwrap();
        let back = EngineCheckpoint::from_bytes(&bytes).unwrap();
        // NaN in the decision histogram breaks derived PartialEq, so
        // compare through a second encode instead.
        assert_eq!(bytes, back.to_bytes().unwrap());
        assert_eq!(back.round(), 120);
        assert_eq!(back.config_digest(), 0xFEED_FACE_CAFE_BEEF);
        assert!(back.decision_times.unwrap().max.is_nan());
    }

    #[test]
    fn minimal_checkpoint_round_trips() {
        let mut ckpt = sample_checkpoint();
        ckpt.decision_times = None;
        ckpt.scenario = None;
        let bytes = ckpt.to_bytes().unwrap();
        assert_eq!(EngineCheckpoint::from_bytes(&bytes).unwrap(), ckpt);
    }

    #[test]
    fn every_truncation_is_rejected_not_panicked() {
        let bytes = sample_checkpoint().to_bytes().unwrap();
        for len in 0..bytes.len() {
            assert!(
                EngineCheckpoint::from_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn version_skew_and_tag_garbage_are_classified() {
        let mut bytes = sample_checkpoint().to_bytes().unwrap();
        let original = bytes.clone();
        bytes[0] = 99;
        assert!(matches!(
            EngineCheckpoint::from_bytes(&bytes).unwrap_err(),
            CodecError::UnsupportedVersion { got: 99 }
        ));
        let mut trailing = original;
        trailing.push(0);
        assert!(matches!(
            EngineCheckpoint::from_bytes(&trailing).unwrap_err(),
            CodecError::Malformed(_)
        ));
    }

    #[test]
    fn lying_length_prefixes_do_not_allocate_or_panic() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.to_bytes().unwrap();
        // The queue count is the first length field after the fixed
        // header (1 + 8 + 8 + 4 + 4 bytes in).
        let mut lying = bytes;
        lying[25..29].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(EngineCheckpoint::from_bytes(&lying).is_err());
    }
}
