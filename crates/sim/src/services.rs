//! Service processes: how many jobs each server can complete per round.
//!
//! Following Section 6.1 of the paper, the per-round service capacity of
//! server `s` is geometrically distributed with mean `µ_s`
//! (`c_s(t) ~ Geom(1/(1+µ_s))`, counting the number of failures before the
//! first success, so `E[c_s(t)] = µ_s`). A deterministic model is provided
//! for tests and worked examples.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Declarative description of the service process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ServiceModel {
    /// `c_s(t) ~ Geometric` with mean `µ_s` (the paper's model).
    #[default]
    Geometric,
    /// `c_s(t) = round(µ_s)` deterministically — useful for exact unit tests.
    Deterministic,
}

impl ServiceModel {
    /// Instantiates the per-server samplers for a cluster with the given
    /// rates.
    pub fn build(&self, rates: &[f64]) -> Vec<ServiceProcess> {
        rates
            .iter()
            .map(|&mu| match self {
                ServiceModel::Geometric => ServiceProcess::geometric(mu),
                ServiceModel::Deterministic => ServiceProcess::deterministic(mu),
            })
            .collect()
    }
}

/// A per-server sampler of round service capacities.
#[derive(Debug, Clone)]
pub enum ServiceProcess {
    /// Geometric capacity with mean `mu`: success probability `1/(1+µ)`.
    Geometric {
        /// Mean capacity per round.
        mu: f64,
        /// Precomputed `1/ln(1 - p)` for the inverse-CDF draw — the engine
        /// samples every server every round, so recomputing the logarithm
        /// per draw would double the cost of the departure phase.
        inv_ln_q: f64,
    },
    /// Fixed capacity `round(µ)` every round.
    Deterministic {
        /// The fixed capacity.
        capacity: u64,
    },
}

impl ServiceProcess {
    /// Geometric process with mean `mu`.
    ///
    /// # Panics
    /// Panics if `mu` is not finite and strictly positive.
    pub fn geometric(mu: f64) -> Self {
        assert!(
            mu.is_finite() && mu > 0.0,
            "service rate must be positive, got {mu}"
        );
        let p = 1.0 / (1.0 + mu);
        ServiceProcess::Geometric {
            mu,
            inv_ln_q: 1.0 / (1.0 - p).ln(),
        }
    }

    /// Deterministic process completing `round(mu)` jobs per round.
    pub fn deterministic(mu: f64) -> Self {
        ServiceProcess::Deterministic {
            capacity: mu.round().max(0.0) as u64,
        }
    }

    /// The mean capacity per round.
    pub fn mean(&self) -> f64 {
        match self {
            ServiceProcess::Geometric { mu, .. } => *mu,
            ServiceProcess::Deterministic { capacity } => *capacity as f64,
        }
    }

    /// Draws the capacity for one round.
    ///
    /// The geometric draw uses the inverse-CDF method
    /// `⌊ln(U)/ln(1−p)⌋` with success probability `p = 1/(1+µ)`, which gives
    /// the number of failures before the first success and therefore has mean
    /// `(1−p)/p = µ`. The `1/ln(1−p)` factor is precomputed at construction.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            ServiceProcess::Geometric { inv_ln_q, .. } => {
                // U ∈ (0, 1); guard against a literal zero from the generator.
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let draws = (u.ln() * inv_ln_q).floor();
                if draws < 0.0 {
                    0
                } else if draws > u64::MAX as f64 {
                    u64::MAX
                } else {
                    draws as u64
                }
            }
            ServiceProcess::Deterministic { capacity } => *capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn geometric_mean_matches_mu() {
        let mut rng = StdRng::seed_from_u64(3);
        for &mu in &[0.5, 1.0, 5.0, 40.0] {
            let process = ServiceProcess::geometric(mu);
            assert_eq!(process.mean(), mu);
            let draws = 60_000;
            let total: u64 = (0..draws).map(|_| process.sample(&mut rng)).sum();
            let mean = total as f64 / draws as f64;
            assert!(
                (mean - mu).abs() < 0.05 * mu.max(1.0),
                "µ = {mu}: empirical mean {mean}"
            );
        }
    }

    #[test]
    fn geometric_variance_matches_theory() {
        // Var[Geom(p)] (failures before success) = (1-p)/p² = µ(1+µ).
        let mu = 3.0;
        let process = ServiceProcess::geometric(mu);
        let mut rng = StdRng::seed_from_u64(11);
        let draws = 120_000;
        let samples: Vec<f64> = (0..draws)
            .map(|_| process.sample(&mut rng) as f64)
            .collect();
        let mean: f64 = samples.iter().sum::<f64>() / draws as f64;
        let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / draws as f64;
        let expected = mu * (1.0 + mu);
        assert!(
            (var - expected).abs() < 0.05 * expected,
            "variance {var} vs expected {expected}"
        );
    }

    #[test]
    fn deterministic_rounds_the_rate() {
        let process = ServiceProcess::deterministic(2.6);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(process.sample(&mut rng), 3);
        assert_eq!(process.mean(), 3.0);
    }

    #[test]
    fn model_builds_one_process_per_server() {
        let rates = [1.0, 5.0, 10.0];
        let geo = ServiceModel::Geometric.build(&rates);
        assert_eq!(geo.len(), 3);
        assert_eq!(geo[2].mean(), 10.0);
        let det = ServiceModel::Deterministic.build(&rates);
        assert_eq!(det[1].mean(), 5.0);
        assert_eq!(ServiceModel::default(), ServiceModel::Geometric);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn geometric_rejects_non_positive_rates() {
        ServiceProcess::geometric(0.0);
    }
}
