//! Run-length-encoded per-server FIFO queues.
//!
//! The engine only needs each queued job's *arrival round* to compute its
//! response time, and all jobs that join a server in the same round are
//! interchangeable. Storing one `(arrival_round, count)` segment per round
//! instead of one entry per job makes the dispatch and departure phases cost
//! `O(distinct arrival rounds touched)` instead of `O(jobs)` — at high load a
//! server can absorb dozens of jobs per round but only ever appends to (or
//! drains) a handful of segments.
//!
//! In steady state the segment ring buffer reaches a stable capacity and the
//! queue performs no further heap allocations.

use std::collections::VecDeque;

/// One run of jobs that arrived at the same round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Segment {
    /// The round the jobs arrived in.
    round: u64,
    /// How many of them are still queued.
    count: u64,
}

/// A FIFO queue of jobs represented as run-length-encoded arrival-round
/// segments.
#[derive(Debug, Clone, Default)]
pub struct SegmentQueue {
    segments: VecDeque<Segment>,
    len: u64,
}

impl SegmentQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        SegmentQueue::default()
    }

    /// Number of queued jobs.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no job is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of segments currently stored (exposed for tests).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Enqueues `count` jobs that arrived in `round`. Jobs pushed for the
    /// round already at the back of the queue merge into its segment, so a
    /// whole arrival batch costs one segment at most.
    ///
    /// Rounds must be pushed in non-decreasing order (the engine's round loop
    /// guarantees this); this is debug-asserted.
    pub fn push(&mut self, round: u64, count: u64) {
        if count == 0 {
            return;
        }
        self.len += count;
        if let Some(last) = self.segments.back_mut() {
            debug_assert!(last.round <= round, "arrival rounds must be monotone");
            if last.round == round {
                last.count += count;
                return;
            }
        }
        self.segments.push_back(Segment { round, count });
    }

    /// Visits every stored segment in FIFO order as `(arrival_round, count)`
    /// pairs — the checkpoint serializer walks these; re-`push`ing them in
    /// order onto an empty queue reconstructs the queue exactly.
    pub fn segments(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.segments.iter().map(|s| (s.round, s.count))
    }

    /// Dequeues up to `capacity` jobs in FIFO order, invoking
    /// `completed(arrival_round, count)` once per drained (partial) segment.
    /// Returns the number of jobs dequeued.
    pub fn pop(&mut self, capacity: u64, mut completed: impl FnMut(u64, u64)) -> u64 {
        let mut remaining = capacity.min(self.len);
        let dequeued = remaining;
        self.len -= dequeued;
        while remaining > 0 {
            let front = self
                .segments
                .front_mut()
                .expect("segment bookkeeping is consistent");
            if front.count > remaining {
                front.count -= remaining;
                completed(front.round, remaining);
                break;
            }
            let Segment { round, count } = *front;
            self.segments.pop_front();
            completed(round, count);
            remaining -= count;
        }
        dequeued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_merges_same_round_jobs_into_one_segment() {
        let mut q = SegmentQueue::new();
        for _ in 0..10 {
            q.push(3, 1);
        }
        q.push(3, 5);
        assert_eq!(q.len(), 15);
        assert_eq!(q.num_segments(), 1);
        q.push(4, 2);
        assert_eq!(q.num_segments(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn zero_count_pushes_are_ignored() {
        let mut q = SegmentQueue::new();
        q.push(1, 0);
        assert!(q.is_empty());
        assert_eq!(q.num_segments(), 0);
    }

    #[test]
    fn pop_respects_fifo_order_and_partial_segments() {
        let mut q = SegmentQueue::new();
        q.push(1, 3);
        q.push(2, 2);
        q.push(5, 4);

        let mut drained: Vec<(u64, u64)> = Vec::new();
        let n = q.pop(4, |round, count| drained.push((round, count)));
        assert_eq!(n, 4);
        assert_eq!(drained, vec![(1, 3), (2, 1)]);
        assert_eq!(q.len(), 5);

        drained.clear();
        let n = q.pop(100, |round, count| drained.push((round, count)));
        assert_eq!(n, 5);
        assert_eq!(drained, vec![(2, 1), (5, 4)]);
        assert!(q.is_empty());
        assert_eq!(q.num_segments(), 0);
    }

    #[test]
    fn pop_on_empty_queue_is_a_no_op() {
        let mut q = SegmentQueue::new();
        let n = q.pop(7, |_, _| panic!("nothing to complete"));
        assert_eq!(n, 0);
    }

    #[test]
    fn matches_a_per_job_vecdeque_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut rle = SegmentQueue::new();
        let mut reference: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        for round in 0..500u64 {
            let arrivals = rng.gen_range(0..6u64);
            rle.push(round, arrivals);
            for _ in 0..arrivals {
                reference.push_back(round);
            }
            let capacity = rng.gen_range(0..6u64);
            let mut popped: Vec<u64> = Vec::new();
            rle.pop(capacity, |r, c| {
                for _ in 0..c {
                    popped.push(r);
                }
            });
            for _ in 0..capacity.min(reference.len() as u64) {
                let expected = reference.pop_front().unwrap();
                assert_eq!(popped.remove(0), expected);
            }
            assert!(popped.is_empty());
            assert_eq!(rle.len(), reference.len() as u64);
        }
    }
}
