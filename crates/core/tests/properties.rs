//! Randomized property tests for the SCD core algorithms.
//!
//! These encode the paper's mathematical claims as machine-checked
//! properties over randomly generated instances:
//!
//! * Algorithm 3 (IWL): work conservation, bounds, monotonicity.
//! * Algorithms 1 & 4: agreement with each other, primal feasibility, KKT
//!   optimality, the prefix structure of the probable set (Lemma 1), and the
//!   Lemma 3 invariant used by the stability proof.
//! * The solution is never worse than natural heuristic distributions.
//!
//! Cases are generated from a seeded [`StdRng`] (the build environment is
//! offline, so no proptest); failure messages carry the case index.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scd_core::iwl::{compute_iwl, ideal_assignment, sorted_by_load};
use scd_core::qp::{check_kkt, exhaustive_solution, objective};
use scd_core::solver::{
    compute_probabilities_fast, compute_probabilities_quadratic, sorted_by_key,
};
use scd_core::stability::check_lemma3;

const CASES: usize = 128;

/// A random heterogeneous instance: queue lengths, rates and total arrivals.
#[derive(Debug, Clone)]
struct Instance {
    queues: Vec<u64>,
    rates: Vec<f64>,
    arrivals: f64,
}

fn instance(rng: &mut StdRng, max_servers: usize) -> Instance {
    let n = rng.gen_range(2..=max_servers);
    Instance {
        queues: (0..n).map(|_| rng.gen_range(0..60u64)).collect(),
        rates: (0..n).map(|_| rng.gen_range(0.5..50.0)).collect(),
        arrivals: rng.gen_range(2..300u64) as f64,
    }
}

fn small_instance(rng: &mut StdRng) -> Instance {
    let n = rng.gen_range(2..=9usize);
    Instance {
        queues: (0..n).map(|_| rng.gen_range(0..15u64)).collect(),
        rates: (0..n).map(|_| rng.gen_range(0.5..12.0)).collect(),
        arrivals: rng.gen_range(2..40u64) as f64,
    }
}

#[test]
fn iwl_conserves_work_and_respects_bounds() {
    let mut rng = StdRng::seed_from_u64(0x111);
    for case in 0..CASES {
        let inst = instance(&mut rng, 64);
        let iwl = compute_iwl(&inst.queues, &inst.rates, inst.arrivals);
        let assignment = ideal_assignment(&inst.queues, &inst.rates, iwl);
        let total: f64 = assignment.iter().sum();
        assert!(
            (total - inst.arrivals).abs() < 1e-6 * (1.0 + inst.arrivals),
            "case {case}: assigned {total}, arrived {}",
            inst.arrivals
        );
        assert!(assignment.iter().all(|&x| x >= -1e-9), "case {case}");

        let loads: Vec<f64> = inst
            .queues
            .iter()
            .zip(&inst.rates)
            .map(|(&q, &mu)| q as f64 / mu)
            .collect();
        let min_load = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_load = loads.iter().cloned().fold(0.0, f64::max);
        let capacity: f64 = inst.rates.iter().sum();
        // Lower bound: water level cannot be below the least-loaded server.
        assert!(iwl >= min_load - 1e-9, "case {case}");
        // Upper bound: spreading all work over all servers from the minimum.
        assert!(
            iwl <= min_load + inst.arrivals / capacity + max_load + 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn iwl_is_monotone_in_arrivals() {
    let mut rng = StdRng::seed_from_u64(0x222);
    for case in 0..CASES {
        let inst = instance(&mut rng, 32);
        let extra = rng.gen_range(1..50u64);
        let base = compute_iwl(&inst.queues, &inst.rates, inst.arrivals);
        let more = compute_iwl(&inst.queues, &inst.rates, inst.arrivals + extra as f64);
        assert!(more + 1e-12 >= base, "case {case}: {more} < {base}");
    }
}

#[test]
fn iwl_presorted_matches_unsorted() {
    let mut rng = StdRng::seed_from_u64(0x333);
    for case in 0..CASES {
        let inst = instance(&mut rng, 48);
        let order = sorted_by_load(&inst.queues, &inst.rates);
        let a = compute_iwl(&inst.queues, &inst.rates, inst.arrivals);
        let b =
            scd_core::iwl::compute_iwl_with_order(&inst.queues, &inst.rates, inst.arrivals, &order);
        assert!((a - b).abs() < 1e-12, "case {case}: {a} vs {b}");
    }
}

#[test]
fn solvers_agree_and_are_feasible() {
    let mut rng = StdRng::seed_from_u64(0x444);
    for case in 0..CASES {
        let inst = instance(&mut rng, 64);
        let iwl = compute_iwl(&inst.queues, &inst.rates, inst.arrivals);
        let fast =
            compute_probabilities_fast(&inst.queues, &inst.rates, inst.arrivals, iwl).unwrap();
        let quad =
            compute_probabilities_quadratic(&inst.queues, &inst.rates, inst.arrivals, iwl).unwrap();

        let total: f64 = fast.probabilities.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "case {case}: total {total}");
        assert!(
            fast.probabilities
                .iter()
                .all(|&p| (0.0..=1.0 + 1e-12).contains(&p)),
            "case {case}"
        );

        for (a, b) in fast.probabilities.iter().zip(&quad.probabilities) {
            assert!(
                (a - b).abs() < 1e-6,
                "case {case}: fast {a} vs quadratic {b}"
            );
        }

        let of = objective(
            &fast.probabilities,
            &inst.queues,
            &inst.rates,
            inst.arrivals,
            iwl,
        );
        let oq = objective(
            &quad.probabilities,
            &inst.queues,
            &inst.rates,
            inst.arrivals,
            iwl,
        );
        assert!((of - oq).abs() < 1e-6, "case {case}");
    }
}

#[test]
fn solutions_satisfy_kkt_and_lemma3() {
    let mut rng = StdRng::seed_from_u64(0x555);
    for case in 0..CASES {
        let inst = instance(&mut rng, 48);
        let iwl = compute_iwl(&inst.queues, &inst.rates, inst.arrivals);
        let sol =
            compute_probabilities_fast(&inst.queues, &inst.rates, inst.arrivals, iwl).unwrap();
        assert!(
            check_kkt(
                &sol.probabilities,
                &inst.queues,
                &inst.rates,
                inst.arrivals,
                iwl,
                1e-6
            )
            .is_ok(),
            "case {case}: KKT violated"
        );
        assert!(
            check_lemma3(&sol.probabilities, &inst.queues, &inst.rates, inst.arrivals).is_ok(),
            "case {case}: Lemma 3 violated"
        );
    }
}

#[test]
fn probable_set_is_a_prefix_of_the_key_order() {
    let mut rng = StdRng::seed_from_u64(0x666);
    for case in 0..CASES {
        let inst = instance(&mut rng, 48);
        let iwl = compute_iwl(&inst.queues, &inst.rates, inst.arrivals);
        let sol =
            compute_probabilities_fast(&inst.queues, &inst.rates, inst.arrivals, iwl).unwrap();
        let order = sorted_by_key(&inst.queues, &inst.rates);
        let mut seen_zero = false;
        for &s in &order {
            if sol.probabilities[s] <= 0.0 {
                seen_zero = true;
            } else {
                assert!(
                    !seen_zero,
                    "case {case}: Lemma 1 violated, S+ is not a prefix"
                );
            }
        }
        assert_eq!(
            sol.probable_set_size,
            sol.probabilities.iter().filter(|&&p| p > 0.0).count(),
            "case {case}"
        );
    }
}

#[test]
fn fast_solver_matches_exhaustive_on_small_instances() {
    let mut rng = StdRng::seed_from_u64(0x777);
    for case in 0..CASES {
        let inst = small_instance(&mut rng);
        let iwl = compute_iwl(&inst.queues, &inst.rates, inst.arrivals);
        let sol =
            compute_probabilities_fast(&inst.queues, &inst.rates, inst.arrivals, iwl).unwrap();
        let reference = exhaustive_solution(&inst.queues, &inst.rates, inst.arrivals, iwl);
        let fast_obj = objective(
            &sol.probabilities,
            &inst.queues,
            &inst.rates,
            inst.arrivals,
            iwl,
        );
        let ref_obj = objective(&reference, &inst.queues, &inst.rates, inst.arrivals, iwl);
        assert!(
            fast_obj <= ref_obj + 1e-7,
            "case {case}: fast {fast_obj} vs exhaustive {ref_obj}"
        );
        for (a, b) in sol.probabilities.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-5, "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn optimal_solution_beats_natural_heuristics() {
    let mut rng = StdRng::seed_from_u64(0x888);
    for case in 0..CASES {
        let inst = instance(&mut rng, 48);
        let iwl = compute_iwl(&inst.queues, &inst.rates, inst.arrivals);
        let sol =
            compute_probabilities_fast(&inst.queues, &inst.rates, inst.arrivals, iwl).unwrap();
        let optimal = objective(
            &sol.probabilities,
            &inst.queues,
            &inst.rates,
            inst.arrivals,
            iwl,
        );

        let n = inst.queues.len();
        // Heuristic 1: uniform.
        let uniform = vec![1.0 / n as f64; n];
        // Heuristic 2: proportional to the service rates (weighted random).
        let capacity: f64 = inst.rates.iter().sum();
        let wr: Vec<f64> = inst.rates.iter().map(|&mu| mu / capacity).collect();
        // Heuristic 3: proportional to the ideally balanced assignment.
        let iba = ideal_assignment(&inst.queues, &inst.rates, iwl);
        let iba_total: f64 = iba.iter().sum();
        let iba_probs: Vec<f64> = if iba_total > 0.0 {
            iba.iter().map(|&x| x / iba_total).collect()
        } else {
            uniform.clone()
        };

        for heuristic in [uniform, wr, iba_probs] {
            let value = objective(&heuristic, &inst.queues, &inst.rates, inst.arrivals, iwl);
            assert!(
                optimal <= value + 1e-7,
                "case {case}: optimal {optimal} exceeds heuristic {value}"
            );
        }
    }
}
