//! Property-based tests for the SCD core algorithms.
//!
//! These encode the paper's mathematical claims as machine-checked
//! properties over randomly generated instances:
//!
//! * Algorithm 3 (IWL): work conservation, bounds, monotonicity.
//! * Algorithms 1 & 4: agreement with each other, primal feasibility, KKT
//!   optimality, the prefix structure of the probable set (Lemma 1), and the
//!   Lemma 3 invariant used by the stability proof.
//! * The solution is never worse than natural heuristic distributions.

use proptest::prelude::*;
use scd_core::iwl::{compute_iwl, ideal_assignment, sorted_by_load};
use scd_core::qp::{check_kkt, exhaustive_solution, objective};
use scd_core::solver::{
    compute_probabilities_fast, compute_probabilities_quadratic, sorted_by_key,
};
use scd_core::stability::check_lemma3;

/// A random heterogeneous instance: queue lengths, rates and total arrivals.
#[derive(Debug, Clone)]
struct Instance {
    queues: Vec<u64>,
    rates: Vec<f64>,
    arrivals: f64,
}

fn instance(max_servers: usize) -> impl Strategy<Value = Instance> {
    (2usize..=max_servers)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(0u64..60, n),
                prop::collection::vec(0.5f64..50.0, n),
                2u64..300,
            )
        })
        .prop_map(|(queues, rates, arrivals)| Instance {
            queues,
            rates,
            arrivals: arrivals as f64,
        })
}

fn small_instance() -> impl Strategy<Value = Instance> {
    (2usize..=9)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(0u64..15, n),
                prop::collection::vec(0.5f64..12.0, n),
                2u64..40,
            )
        })
        .prop_map(|(queues, rates, arrivals)| Instance {
            queues,
            rates,
            arrivals: arrivals as f64,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn iwl_conserves_work_and_respects_bounds(inst in instance(64)) {
        let iwl = compute_iwl(&inst.queues, &inst.rates, inst.arrivals);
        let assignment = ideal_assignment(&inst.queues, &inst.rates, iwl);
        let total: f64 = assignment.iter().sum();
        prop_assert!((total - inst.arrivals).abs() < 1e-6 * (1.0 + inst.arrivals));
        prop_assert!(assignment.iter().all(|&x| x >= -1e-9));

        let loads: Vec<f64> = inst
            .queues
            .iter()
            .zip(&inst.rates)
            .map(|(&q, &mu)| q as f64 / mu)
            .collect();
        let min_load = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        let capacity: f64 = inst.rates.iter().sum();
        // Lower bound: water level cannot be below the least-loaded server.
        prop_assert!(iwl >= min_load - 1e-9);
        // Upper bound: spreading all work over all servers from the minimum.
        prop_assert!(iwl <= min_load + inst.arrivals / capacity + loads.iter().cloned().fold(0.0, f64::max) + 1e-9);
    }

    #[test]
    fn iwl_is_monotone_in_arrivals(inst in instance(32), extra in 1u64..50) {
        let base = compute_iwl(&inst.queues, &inst.rates, inst.arrivals);
        let more = compute_iwl(&inst.queues, &inst.rates, inst.arrivals + extra as f64);
        prop_assert!(more + 1e-12 >= base);
    }

    #[test]
    fn iwl_presorted_matches_unsorted(inst in instance(48)) {
        let order = sorted_by_load(&inst.queues, &inst.rates);
        let a = compute_iwl(&inst.queues, &inst.rates, inst.arrivals);
        let b = scd_core::iwl::compute_iwl_with_order(&inst.queues, &inst.rates, inst.arrivals, &order);
        prop_assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn solvers_agree_and_are_feasible(inst in instance(64)) {
        let iwl = compute_iwl(&inst.queues, &inst.rates, inst.arrivals);
        let fast = compute_probabilities_fast(&inst.queues, &inst.rates, inst.arrivals, iwl).unwrap();
        let quad = compute_probabilities_quadratic(&inst.queues, &inst.rates, inst.arrivals, iwl).unwrap();

        let total: f64 = fast.probabilities.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(fast.probabilities.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));

        for (a, b) in fast.probabilities.iter().zip(&quad.probabilities) {
            prop_assert!((a - b).abs() < 1e-6, "fast {a} vs quadratic {b}");
        }

        let of = objective(&fast.probabilities, &inst.queues, &inst.rates, inst.arrivals, iwl);
        let oq = objective(&quad.probabilities, &inst.queues, &inst.rates, inst.arrivals, iwl);
        prop_assert!((of - oq).abs() < 1e-6);
    }

    #[test]
    fn solutions_satisfy_kkt_and_lemma3(inst in instance(48)) {
        let iwl = compute_iwl(&inst.queues, &inst.rates, inst.arrivals);
        let sol = compute_probabilities_fast(&inst.queues, &inst.rates, inst.arrivals, iwl).unwrap();
        prop_assert!(check_kkt(&sol.probabilities, &inst.queues, &inst.rates, inst.arrivals, iwl, 1e-6).is_ok());
        prop_assert!(check_lemma3(&sol.probabilities, &inst.queues, &inst.rates, inst.arrivals).is_ok());
    }

    #[test]
    fn probable_set_is_a_prefix_of_the_key_order(inst in instance(48)) {
        let iwl = compute_iwl(&inst.queues, &inst.rates, inst.arrivals);
        let sol = compute_probabilities_fast(&inst.queues, &inst.rates, inst.arrivals, iwl).unwrap();
        let order = sorted_by_key(&inst.queues, &inst.rates);
        let mut seen_zero = false;
        for &s in &order {
            if sol.probabilities[s] <= 0.0 {
                seen_zero = true;
            } else {
                prop_assert!(!seen_zero, "Lemma 1 violated: S+ is not a prefix");
            }
        }
        prop_assert_eq!(
            sol.probable_set_size,
            sol.probabilities.iter().filter(|&&p| p > 0.0).count()
        );
    }

    #[test]
    fn fast_solver_matches_exhaustive_on_small_instances(inst in small_instance()) {
        let iwl = compute_iwl(&inst.queues, &inst.rates, inst.arrivals);
        let sol = compute_probabilities_fast(&inst.queues, &inst.rates, inst.arrivals, iwl).unwrap();
        let reference = exhaustive_solution(&inst.queues, &inst.rates, inst.arrivals, iwl);
        let fast_obj = objective(&sol.probabilities, &inst.queues, &inst.rates, inst.arrivals, iwl);
        let ref_obj = objective(&reference, &inst.queues, &inst.rates, inst.arrivals, iwl);
        prop_assert!(fast_obj <= ref_obj + 1e-7);
        for (a, b) in sol.probabilities.iter().zip(&reference) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn optimal_solution_beats_natural_heuristics(inst in instance(48)) {
        let iwl = compute_iwl(&inst.queues, &inst.rates, inst.arrivals);
        let sol = compute_probabilities_fast(&inst.queues, &inst.rates, inst.arrivals, iwl).unwrap();
        let optimal = objective(&sol.probabilities, &inst.queues, &inst.rates, inst.arrivals, iwl);

        let n = inst.queues.len();
        // Heuristic 1: uniform.
        let uniform = vec![1.0 / n as f64; n];
        // Heuristic 2: proportional to the service rates (weighted random).
        let capacity: f64 = inst.rates.iter().sum();
        let wr: Vec<f64> = inst.rates.iter().map(|&mu| mu / capacity).collect();
        // Heuristic 3: proportional to the ideally balanced assignment.
        let iba = ideal_assignment(&inst.queues, &inst.rates, iwl);
        let iba_total: f64 = iba.iter().sum();
        let iba_probs: Vec<f64> = if iba_total > 0.0 {
            iba.iter().map(|&x| x / iba_total).collect()
        } else {
            uniform.clone()
        };

        for heuristic in [uniform, wr, iba_probs] {
            let value = objective(&heuristic, &inst.queues, &inst.rates, inst.arrivals, iwl);
            prop_assert!(
                optimal <= value + 1e-7,
                "optimal {optimal} exceeds heuristic {value}"
            );
        }
    }
}
