//! Solvers for the stochastic-coordination optimization problem (Eq. 10 of
//! the paper).
//!
//! Given queue lengths `q_s`, rates `µ_s`, an (estimated) total number of
//! arrivals `a` and the ideal workload `iwl`, the problem is
//!
//! ```text
//!   minimize_P  f(P) = (a−1) Σ_s p_s²/µ_s + Σ_s (2(q_s − µ_s·iwl) + 1)/µ_s · p_s
//!   subject to  Σ_s p_s = 1,  p_s ≥ 0
//! ```
//!
//! The KKT analysis of Section 4 shows that the *probable set* `S⁺` (servers
//! with positive probability) is always a prefix of the servers sorted by
//! `(2q_s + 1)/µ_s` (Lemma 1 / Corollary 1), and that for a known `S⁺` the
//! solution is closed-form (Eq. 14–16). Two solvers exploit this:
//!
//! * [`compute_probabilities_quadratic`] — Algorithm 1: evaluates every
//!   prefix from scratch, `O(n²)`.
//! * [`compute_probabilities_fast`] — Algorithm 4: maintains running sums so
//!   each prefix costs `O(1)` (Lemma 2), `O(n log n)` total (or `O(n)` when
//!   the caller supplies the sorted order).
//!
//! Both return identical results (verified against each other and against an
//! exhaustive subset search in this module's tests and in `qp.rs`).

use crate::iwl::compute_iwl;
use scd_model::{AliasSampler, RoundCache, WarmSeeds};
use std::error::Error;
use std::fmt;

/// Numerical slack used when testing primal feasibility (`p_s ≥ 0`).
const FEASIBILITY_TOLERANCE: f64 = 1e-9;

/// Arrivals within this distance of 1.0 take the closed-form single-job path
/// (Eq. 9), which avoids dividing by `a − 1 ≈ 0`.
const SINGLE_JOB_THRESHOLD: f64 = 1.0 + 1e-9;

/// Which algorithm computes the dispatching probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Algorithm 4 — `O(n log n)` (optimal); the default used by SCD.
    Fast,
    /// Algorithm 1 — `O(n²)`; kept for the run-time comparison of Fig. 5/8.
    Quadratic,
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverKind::Fast => write!(f, "algorithm-4"),
            SolverKind::Quadratic => write!(f, "algorithm-1"),
        }
    }
}

impl SolverKind {
    /// Stable discriminant used as the [`RoundCache`] solver-memo tag.
    pub(crate) fn memo_tag(self) -> u8 {
        match self {
            SolverKind::Fast => 0,
            SolverKind::Quadratic => 1,
        }
    }
}

/// Errors produced by the probability solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// `queues` and `rates` differ in length, or the cluster is empty.
    InvalidCluster {
        /// Number of queue-length entries.
        queues: usize,
        /// Number of rate entries.
        rates: usize,
    },
    /// The arrival count was not a finite number `≥ 1`.
    InvalidArrivals(f64),
    /// No prefix of the candidate ordering was primal-feasible. This cannot
    /// happen for valid inputs (Corollary 1 guarantees a feasible prefix) and
    /// indicates catastrophic floating-point trouble.
    NoFeasiblePrefix,
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::InvalidCluster { queues, rates } => write!(
                f,
                "invalid cluster description: {queues} queue lengths vs {rates} rates (both must be equal and non-zero)"
            ),
            SolverError::InvalidArrivals(a) => {
                write!(f, "estimated arrivals must be a finite number >= 1, got {a}")
            }
            SolverError::NoFeasiblePrefix => {
                write!(f, "no feasible prefix found; inputs are numerically degenerate")
            }
        }
    }
}

impl Error for SolverError {}

/// The full output of solving the SCD optimization problem for one round.
#[derive(Debug, Clone, PartialEq)]
pub struct ScdSolution {
    /// The optimal dispatching probabilities `P* = [p_1, …, p_n]`.
    pub probabilities: Vec<f64>,
    /// The ideal workload used as the balancing target.
    pub iwl: f64,
    /// The Lagrange multiplier `Λ₀` of the equality constraint; `None` when
    /// the single-job closed form (Eq. 9) was used.
    pub lambda0: Option<f64>,
    /// Size of the probable set `S⁺` (servers with positive probability).
    pub probable_set_size: usize,
    /// The value of the objective `f(P*)` (Eq. 10); 0.0 for the single-job
    /// closed form, whose objective is a different linear function.
    pub objective: f64,
}

/// Returns the server indices sorted in non-decreasing order of the key
/// `(2q_s + 1)/µ_s` — the candidate order of Corollary 1.
///
/// The keys are computed once and cached before sorting (the comparator
/// previously recomputed both keys on every comparison, i.e. `O(n log n)`
/// divisions instead of `O(n)`).
pub fn sorted_by_key(queues: &[u64], rates: &[f64]) -> Vec<usize> {
    let keys: Vec<f64> = queues
        .iter()
        .zip(rates)
        .map(|(&q, &mu)| (2.0 * q as f64 + 1.0) / mu)
        .collect();
    let mut order: Vec<usize> = (0..queues.len()).collect();
    order.sort_unstable_by(|&a, &b| keys[a].partial_cmp(&keys[b]).expect("keys are finite"));
    order
}

/// Reusable buffers for the per-round SCD pipeline (IWL + probabilities).
///
/// A dispatcher-resident policy keeps one of these across rounds so the
/// steady-state decision path performs no heap allocations: the load/key
/// vectors are refilled in place every round and the reciprocal rates are
/// computed once per run. (Earlier iterations of this scratch also carried
/// sort-order permutations across rounds; the sort-free trimming solvers
/// below made them unnecessary.)
#[derive(Debug, Clone, Default)]
pub struct ScdScratch {
    /// Cached loads `q_s/µ_s` (Algorithm 3's water-filling inputs).
    loads: Vec<f64>,
    /// Cached candidate keys `(2q_s + 1)/µ_s` (Corollary 1 keys).
    keys: Vec<f64>,
    /// The rates the reciprocals below were computed for (rates are static
    /// per run, so this almost never changes after the first round).
    rates_snapshot: Vec<f64>,
    /// Cached reciprocal rates `1/µ_s`. Turning the solver's per-round
    /// divisions (loads, keys, probability fill) into multiplications is a
    /// large win: f64 division is several times the latency of
    /// multiplication and the per-decision pipeline performs `O(n)` of them
    /// per pass.
    inv_rates: Vec<f64>,
    /// Warm-start seeds (previous solve's level and multiplier) for the
    /// cache-less entry point; the engine path keeps its seeds in the shared
    /// [`RoundCache`] instead.
    warm: WarmSeeds,
}

impl ScdScratch {
    /// Refreshes the cached reciprocal rates if `rates` changed (length or
    /// contents). The comparison is a single cheap pass; rates are fixed for
    /// the lifetime of a simulation run, so the rebuild happens once.
    fn refresh_inv_rates(&mut self, rates: &[f64]) {
        scd_model::refresh_reciprocal_rates(&mut self.rates_snapshot, &mut self.inv_rates, rates);
    }

    /// The warm-start seed store of this scratch (exposed for tests: the
    /// `(accepts, fallbacks)` counters show whether the warm path ran).
    pub fn warm_seeds(&self) -> &WarmSeeds {
        &self.warm
    }
}

/// Computes the ideal workload by Michelot-style iterative trimming instead
/// of Algorithm 3's sort-and-scan: start from the water level of the full
/// server set, drop every server whose load is already above the level,
/// recompute, repeat.
///
/// Each removal can only lower the level (removing `x` with `load_x ≥ w`
/// changes it by `µ_x·Σµ·(w − load_x) ≤ 0`), so dropped servers stay
/// dropped, the loop terminates after at most `n` rounds — typically 2–4 —
/// and the fixpoint satisfies exactly the water-filling conditions, i.e. it
/// *is* the unique IWL of Algorithm 3. Unlike the sort, the passes are
/// sequential, branch-predictable and allocation-free, which is what the
/// engine hot path cares about.
fn iwl_by_trimming(queues: &[u64], rates: &[f64], loads: &[f64], arrivals: f64) -> f64 {
    debug_assert!(arrivals >= 1.0);
    let n = loads.len();
    // Full-set water level.
    let sum_q: f64 = queues.iter().map(|&q| q as f64).sum();
    let sum_mu: f64 = rates.iter().sum();
    let mut level = (arrivals + sum_q) / sum_mu;
    let mut active = n;
    // In exact arithmetic the level is non-increasing and the active set
    // shrinks every iteration, so at most `n` iterations are needed. In
    // floating point a server sitting exactly on the water level can flip
    // membership and bounce the level by an ulp forever; clamping the level
    // to be non-increasing restores guaranteed termination (the membership
    // set then shrinks monotonically), and the cap is pure defensiveness.
    for _ in 0..=n {
        let mut sq = 0.0;
        let mut smu = 0.0;
        let mut count = 0usize;
        for s in 0..n {
            if loads[s] < level {
                sq += queues[s] as f64;
                smu += rates[s];
                count += 1;
            }
        }
        if count == active || count == 0 {
            break;
        }
        active = count;
        level = level.min((arrivals + sq) / smu);
    }
    level
}

/// Computes the optimal Lagrange multiplier `Λ0` by the same iterative
/// trimming, applied to the probability problem: with `t_s = 2·iwl − key_s`,
/// the KKT solution is `p_s ∝ µ_s·(t_s − Λ0)⁺` with
/// `Λ0 = (Σ_S µt − 2(a−1)) / Σ_S µ` over the probable set
/// `S = {s : t_s > Λ0}`. Starting from all servers and dropping violators
/// raises `Λ0` monotonically, so the loop terminates (at most `n` rounds,
/// typically 2–4) at the unique KKT point — the same solution Algorithm 4
/// finds by scanning sorted prefixes, without sorting.
///
/// `S` can never become empty: `Σ_S µ(t − Λ0) = 2(a−1) > 0` guarantees some
/// member strictly exceeds `Λ0`.
fn lambda0_by_trimming(rates: &[f64], keys: &[f64], arrivals: f64, iwl: f64) -> f64 {
    debug_assert!(arrivals > 1.0);
    let n = keys.len();
    let c = 2.0 * iwl;
    let mut num = -2.0 * (arrivals - 1.0);
    let mut den = 0.0;
    for s in 0..n {
        num += rates[s] * (c - keys[s]);
        den += rates[s];
    }
    let mut lambda0 = num / den;
    let mut active = n;
    // Mirror image of the IWL loop: `Λ0` is non-decreasing in exact
    // arithmetic, so clamping it to be non-decreasing prevents ulp-level
    // oscillation when a server's `t` lands exactly on `Λ0` (its probability
    // is 0 either way); the iteration cap is pure defensiveness.
    for _ in 0..=n {
        let mut nm = -2.0 * (arrivals - 1.0);
        let mut dn = 0.0;
        let mut count = 0usize;
        for s in 0..n {
            let t = c - keys[s];
            if t > lambda0 {
                nm += rates[s] * t;
                dn += rates[s];
                count += 1;
            }
        }
        if count == active || count == 0 {
            break;
        }
        active = count;
        lambda0 = lambda0.max(nm / dn);
    }
    lambda0
}

/// Computes `Λ0` over a **class-compressed** snapshot by the same iterative
/// trimming as [`lambda0_by_trimming`]: members of one `(q, µ)` class share
/// the margin `t = 2·iwl − key`, so they cross the multiplier threshold
/// together and the KKT fixpoint can be found over `C` classes. `cmu` holds
/// the per-class aggregate rates `count·µ` and `keys` the per-class
/// Corollary 1 keys (see `scd_model::ClassPartition`). Like the grouped
/// water level, only the summation grouping differs from the dense sweep,
/// so the multiplier can differ in the last ulps.
fn lambda0_by_trimming_grouped(cmu: &[f64], keys: &[f64], arrivals: f64, iwl: f64) -> f64 {
    debug_assert!(arrivals > 1.0);
    debug_assert_eq!(cmu.len(), keys.len());
    let n = keys.len();
    let c = 2.0 * iwl;
    let mut num = -2.0 * (arrivals - 1.0);
    let mut den = 0.0;
    for (&mu_mass, &key) in cmu.iter().zip(keys) {
        num += mu_mass * (c - key);
        den += mu_mass;
    }
    let mut lambda0 = num / den;
    let mut active = n;
    // Same monotone-clamped termination argument as the dense loop; the
    // sweeps are branchless for the same scattered-membership reason.
    for _ in 0..=n {
        let mut nm = -2.0 * (arrivals - 1.0);
        let mut dn = 0.0;
        let mut count = 0usize;
        for (&mu_mass, &key) in cmu.iter().zip(keys) {
            let t = c - key;
            let member = t > lambda0;
            let mask = member as u64 as f64;
            nm += mask * (mu_mass * t);
            dn += mask * mu_mass;
            count += member as usize;
        }
        if count == active || count == 0 {
            break;
        }
        active = count;
        lambda0 = lambda0.max(nm / dn);
    }
    lambda0
}

/// How many verification/refinement passes a warm **water-level** attempt
/// may spend before giving up. A candidate seeded from a *different*
/// estimate's active set typically lands above the fixpoint (pouring the
/// new arrival mass over the old set) and then descends monotonically, one
/// boundary server per pass — exactly like the cold iteration but starting
/// nearby instead of at the full set. Each refinement costs one pass, the
/// same as a cold iteration, so a generous budget only converts would-be
/// fallbacks (which pay the full cold restart) into successes.
const WARM_IWL_REFINEMENTS: usize = 6;

/// Refinement budget of the warm **multiplier** attempt. Its fused
/// verification pass doubles as the probability fill, which makes failed
/// passes pricier than cold iterations — and in practice the multiplier's
/// probable set barely moves between nearby solves (first-pass acceptance
/// dominates), so the budget stays small.
const WARM_REFINEMENTS: usize = 2;

/// Half-width of the near-boundary rejection window of the warm
/// verification passes, as a fraction of the candidate's scale. A warm
/// result is accepted only when **no** server's load (respectively key
/// margin) lies this close to the verified level (multiplier): near the
/// boundary the cold iteration's monotonicity clamps can bind, making the
/// cold result trajectory-dependent rather than the pure fixpoint the warm
/// path reproduces. The window is ~5 orders of magnitude wider than the
/// worst-case accumulated rounding of the trimming sums, so clamp-binding
/// states always fall back to the cold oracle; states this close to
/// degeneracy are rare, so the fallback costs nothing measurable.
const WARM_BOUNDARY_GUARD: f64 = 1e-9;

/// The warm level candidate shared by [`warm_iwl`] and
/// [`warm_fast_solve`]. Preferred source: the active-set sums of an earlier
/// accepted solve of *this round* (same snapshot, different estimate — the
/// set was verified as a threshold set of these very loads, so its
/// index-order sums are exactly what the cold iteration would recompute
/// over it), which makes the candidate `O(1)`. Otherwise pay one
/// membership pass over the previous round's accepted level. Returns the
/// candidate and its set size; `None` when no seed exists or the seed's
/// set is empty.
fn level_candidate(
    queues: &[u64],
    rates: &[f64],
    loads: &[f64],
    arrivals: f64,
    seeds: &WarmSeeds,
) -> Option<(f64, usize)> {
    if let Some((sq, smu, cached_count)) = seeds.level_sums() {
        return Some(((arrivals + sq) / smu, cached_count));
    }
    let seed = seeds.level()?;
    let mut sq = 0.0;
    let mut smu = 0.0;
    let mut count = 0usize;
    // Branchless membership (the mask multiplies are exactly 1.0 or 0.0,
    // so the accumulated sums are bit-for-bit the branchy — i.e. cold —
    // sums: `x + 0.0·y` never changes a non-negative float sum): the
    // members are scattered in index order, so a data-dependent branch
    // here mispredicts roughly half the time.
    for ((&load, &q), &mu) in loads.iter().zip(queues).zip(rates) {
        let member = load < seed;
        let mask = member as u64 as f64;
        sq += mask * (q as f64);
        smu += mask * mu;
        count += member as usize;
    }
    if count == 0 {
        return None;
    }
    Some(((arrivals + sq) / smu, count))
}

/// Attempts to reproduce the [`iwl_by_trimming`] fixpoint from the previous
/// solve's water level instead of descending from the full-set level.
///
/// The cold iteration terminates at a *count-stable* pair `(S, L)`:
/// `L = (a + Σ_S q)/(Σ_S µ)` with `S = {s : loads_s < L}` (its break
/// condition compares only set sizes, but strict-threshold sets over one
/// load vector are nested, so equal counts mean equal sets). This function
/// seeds the membership test with the previous level, recomputes the level
/// from that set **with the cold iteration's exact expressions and
/// index-order sums**, and accepts only a verified count-stable fixpoint.
/// Such a fixpoint is unique (removing a member with `load ≥ L` can only
/// lower the level, adding one can only raise it — the standard
/// water-filling exchange argument), so an accepted level is bit-for-bit
/// the level the cold iteration returns.
///
/// Returns `None` — caller falls back to the cold solve — when the seed's
/// set is empty, the refinement budget is exhausted, or any server sits
/// *near* the candidate level (within [`WARM_BOUNDARY_GUARD`] of it,
/// relative to the level's magnitude). Near-boundary servers are where the
/// cold iteration's monotonicity clamp can bind, which makes its result
/// trajectory-dependent and **not** a pure fixpoint; the guard window is
/// many orders of magnitude wider than the accumulated rounding error of
/// the sums (`n·ε ≈ 1e-14` at `n = 100` versus `1e-9`), so whenever the
/// clamp could possibly have engaged, the warm path refuses to guess and
/// lets the oracle decide.
fn warm_iwl(
    queues: &[u64],
    rates: &[f64],
    loads: &[f64],
    arrivals: f64,
    seeds: &WarmSeeds,
) -> Option<f64> {
    debug_assert!(arrivals >= 1.0);
    debug_assert_eq!(loads.len(), queues.len());
    let (mut level, mut count) = level_candidate(queues, rates, loads, arrivals, seeds)?;
    for _ in 0..WARM_IWL_REFINEMENTS {
        // Verification pass: the candidate is accepted iff its own threshold
        // set is the set it was computed from (count equality suffices —
        // nested sets) and no load sits near the level (see the guard
        // constant; the loads and the level are sums of positives, so the
        // level's rounding error is a small multiple of `ε·level`).
        let guard = WARM_BOUNDARY_GUARD * (1.0 + level.abs());
        let mut sq2 = 0.0;
        let mut smu2 = 0.0;
        let mut count2 = 0usize;
        let mut boundary = 0usize;
        for ((&load, &q), &mu) in loads.iter().zip(queues).zip(rates) {
            boundary += ((load - level).abs() <= guard) as usize;
            let member = load < level;
            let mask = member as u64 as f64;
            sq2 += mask * (q as f64);
            smu2 += mask * mu;
            count2 += member as usize;
        }
        if boundary > 0 || count2 == 0 {
            return None;
        }
        if count2 == count {
            // The verification pass's sums are over the accepted set:
            // publish them so later solves of this round start O(1).
            seeds.set_level_sums(sq2, smu2, count2);
            return Some(level);
        }
        count = count2;
        level = (arrivals + sq2) / smu2;
    }
    None
}

/// Attempts to reproduce the [`lambda0_by_trimming`] fixpoint from the
/// previous solve's multiplier, filling `out` with the probability vector in
/// the same pass the verification runs.
///
/// Mirror image of [`warm_iwl`]: the cold iteration terminates at a
/// count-stable `(S, Λ0)` with `S = {s : 2·iwl − key_s > Λ0}` and
/// `Λ0 = (Σ_S µ(2·iwl − key) − 2(a−1)) / Σ_S µ`, which is unique by the same
/// exchange argument, so a verified candidate is bit-for-bit the cold
/// result. The fill uses exactly [`fill_probabilities_cached`]'s arithmetic
/// (including the final rescale — the running total skips only exact zeros,
/// which never change a float sum), so an accepted solve's probabilities are
/// indistinguishable from the cold solve's.
///
/// Returns `None` (cold fallback) on an empty seed set, exhausted
/// refinements, or any margin `2·iwl − key_s` within the near-boundary
/// guard window of `Λ0` (the multiplier's numerator can cancel, so the
/// window is scaled by the terms feeding it, not just by `Λ0`).
fn warm_lambda0_fill(
    rates: &[f64],
    keys: &[f64],
    arrivals: f64,
    iwl: f64,
    seed: f64,
    out: &mut Vec<f64>,
) -> Option<(f64, f64)> {
    let (lambda0, dn, count) = lambda_candidate_from_seed(rates, keys, arrivals, 2.0 * iwl, seed)?;
    warm_lambda_verify_fill(rates, keys, arrivals, iwl, lambda0, dn, count, out)
}

/// Λ0 pass 1: the candidate multiplier of the seed's probable set, with the
/// cold iteration's exact accumulation. Returns `(Λ0, Σ_S µ, |S|)`, or
/// `None` when the seed's set is empty.
fn lambda_candidate_from_seed(
    rates: &[f64],
    keys: &[f64],
    arrivals: f64,
    c: f64,
    seed: f64,
) -> Option<(f64, f64, usize)> {
    let mut nm = -2.0 * (arrivals - 1.0);
    let mut dn = 0.0;
    let mut count = 0usize;
    // Branchless membership; the mask multiplies add exact ±0.0 for
    // non-members, which never changes a float sum — bit-identical to the
    // cold accumulation (see `warm_fast_solve` for why this matters here).
    for (&key, &mu) in keys.iter().zip(rates) {
        let t = c - key;
        let member = t > seed;
        let mask = member as u64 as f64;
        nm += mask * (mu * t);
        dn += mask * mu;
        count += member as usize;
    }
    if count == 0 {
        return None;
    }
    Some((nm / dn, dn, count))
}

/// The verification/refinement loop of the warm multiplier stage, starting
/// from a caller-supplied candidate (`lambda_candidate_from_seed`, or the
/// speculative fused pass inside [`warm_fast_solve`]). On acceptance `out`
/// holds the normalized distribution and the returned pair is
/// `(Λ0, exact index-order sum of out)`.
#[allow(clippy::too_many_arguments)] // internal stage: the solve's full table set, not a config surface
fn warm_lambda_verify_fill(
    rates: &[f64],
    keys: &[f64],
    arrivals: f64,
    iwl: f64,
    mut lambda0: f64,
    mut dn: f64,
    mut count: usize,
    out: &mut Vec<f64>,
) -> Option<(f64, f64)> {
    debug_assert!(arrivals > 1.0);
    debug_assert_eq!(keys.len(), rates.len());
    let c = 2.0 * iwl;
    let inv_2a1 = 1.0 / (2.0 * (arrivals - 1.0));
    for _ in 0..WARM_REFINEMENTS {
        // Fused verification + speculative fill: when the candidate
        // verifies, `out` already holds the (unscaled) distribution. The
        // guard scale accounts for the cancellation in the numerator: the
        // member margins are bounded by |c| + |Λ0| and the constant term by
        // 2(a−1)/Σµ, so the window dominates the sum's rounding error.
        let guard =
            WARM_BOUNDARY_GUARD * (1.0 + c.abs() + lambda0.abs() + 2.0 * (arrivals - 1.0) / dn);
        let c2 = 2.0 * iwl - lambda0;
        let mut nm2 = -2.0 * (arrivals - 1.0);
        let mut dn2 = 0.0;
        let mut count2 = 0usize;
        let mut boundary = 0usize;
        let mut total = 0.0;
        out.clear();
        // Branchless membership + select-based fill (clipped entries store
        // and add exact 0.0, which never changes a float sum) — members and
        // clipped servers are scattered in index order, so data-dependent
        // branches here would mispredict heavily.
        for (&key, &mu) in keys.iter().zip(rates) {
            let t = c - key;
            boundary += ((t - lambda0).abs() <= guard) as usize;
            let member = t > lambda0;
            let mask = member as u64 as f64;
            nm2 += mask * (mu * t);
            dn2 += mask * mu;
            count2 += member as usize;
            let p = mu * (c2 - key) * inv_2a1;
            let kept = if p > 0.0 { p } else { 0.0 };
            total += kept;
            out.push(kept);
        }
        if boundary > 0 || count2 == 0 {
            return None;
        }
        if count2 == count {
            // Accepted: rescale exactly like `normalize` would, and
            // accumulate the post-rescale sum in the same pass — the
            // index-order sum of the stored values, i.e. bit-for-bit what
            // `AliasSampler::rebuild` would recompute over them (adding
            // exact zeros never changes a float sum), so the caller can
            // hand the table construction a precomputed total.
            debug_assert!(
                (total - 1.0).abs() < 1e-6,
                "solver produced probabilities summing to {total}"
            );
            let mut post_total = total;
            if total > 0.0 {
                let inv_total = 1.0 / total;
                post_total = 0.0;
                for p in out.iter_mut() {
                    *p *= inv_total;
                    post_total += *p;
                }
            }
            return Some((lambda0, post_total));
        }
        count = count2;
        dn = dn2;
        lambda0 = nm2 / dn2;
    }
    None
}

/// The complete warm Fast-pipeline solve over shared per-round tables:
/// verified warm water level with the **multiplier's candidate pass fused
/// into the level's verification pass** (speculative — from the second
/// verification on, the level candidate almost always verifies, so the
/// extra per-element work is spent exactly when it pays), then the fused
/// multiplier verification/fill.
///
/// Returns `None` only when the *level* stage cannot be warm-verified (the
/// caller then runs the full cold solve). A verified level with a failed
/// multiplier stage falls back to the cold multiplier internally and still
/// returns the solve — `(iwl, Some(exact probability sum))` on a fully warm
/// fill, `(iwl, None)` when the cold fill ran.
fn warm_fast_solve(
    queues: &[u64],
    rates: &[f64],
    loads: &[f64],
    keys: &[f64],
    arrivals: f64,
    seeds: &WarmSeeds,
    out: &mut Vec<f64>,
) -> Option<(f64, Option<f64>)> {
    debug_assert!(arrivals > SINGLE_JOB_THRESHOLD);
    let (mut level, mut count) = level_candidate(queues, rates, loads, arrivals, seeds)?;
    let lambda_seed = seeds.lambda();
    // Λ0 candidate computed alongside an accepted level verification, when
    // the fused pass ran: (Λ0, Σ_S µ, |S|).
    let mut lambda_cand: Option<(f64, f64, usize)> = None;
    let mut accepted = false;
    for attempt in 0..WARM_IWL_REFINEMENTS {
        // Verification pass: the candidate is accepted iff its own threshold
        // set is the set it was computed from (count equality suffices —
        // nested sets) and no load sits near the level (see the guard
        // constant; the loads and the level are sums of positives, so the
        // level's rounding error is a small multiple of `ε·level`).
        let guard = WARM_BOUNDARY_GUARD * (1.0 + level.abs());
        let mut sq2 = 0.0;
        let mut smu2 = 0.0;
        let mut count2 = 0usize;
        let mut boundary = 0usize;
        // Branchless membership everywhere in these sweeps: the mask
        // multiplies contribute exactly `1.0·x` or `±0.0`, which never
        // changes a non-negative (or any) float sum, so the accumulated
        // values are bit-for-bit the branchy — i.e. cold — sums. Members
        // are scattered in index order, so data-dependent branches would
        // mispredict roughly half the time; the selects keep the sweeps
        // superscalar.
        //
        // Speculative fusion: a first verification of a cross-estimate
        // candidate usually fails even in sorted dispatch order (at high
        // load the balanced queues pack tightly around the waterline, so
        // nearly every estimate change moves the active set), but a
        // *refined* candidate almost always verifies — so from the second
        // pass on, accumulate the multiplier's seed-set sums (with the
        // speculative `c = 2·level`) in the same sweep.
        let speculate = lambda_seed.is_some() && attempt >= 1;
        if speculate {
            let lseed = lambda_seed.expect("speculation requires a multiplier seed");
            let c = 2.0 * level;
            let mut nm = -2.0 * (arrivals - 1.0);
            let mut dn = 0.0;
            let mut lcount = 0usize;
            for (((&load, &q), &mu), &key) in loads.iter().zip(queues).zip(rates).zip(keys) {
                boundary += ((load - level).abs() <= guard) as usize;
                let member = load < level;
                let mask = member as u64 as f64;
                sq2 += mask * (q as f64);
                smu2 += mask * mu;
                count2 += member as usize;
                let t = c - key;
                let lmember = t > lseed;
                let lmask = lmember as u64 as f64;
                nm += lmask * (mu * t);
                dn += lmask * mu;
                lcount += lmember as usize;
            }
            if lcount > 0 {
                lambda_cand = Some((nm / dn, dn, lcount));
            }
        } else {
            for ((&load, &q), &mu) in loads.iter().zip(queues).zip(rates) {
                boundary += ((load - level).abs() <= guard) as usize;
                let member = load < level;
                let mask = member as u64 as f64;
                sq2 += mask * (q as f64);
                smu2 += mask * mu;
                count2 += member as usize;
            }
        }
        if boundary > 0 || count2 == 0 {
            return None;
        }
        if count2 == count {
            // The verification pass's sums are over the accepted set:
            // publish them so later solves of this round start O(1).
            seeds.set_level_sums(sq2, smu2, count2);
            accepted = true;
            break;
        }
        lambda_cand = None; // computed against a rejected level
        count = count2;
        level = (arrivals + sq2) / smu2;
    }
    if !accepted {
        return None;
    }
    seeds.record_accept();
    seeds.set_level(level);
    let iwl = level;

    // Multiplier stage: speculative candidate, or a dedicated pass when the
    // level verified before any fused pass ran.
    let candidate = lambda_cand.or_else(|| {
        lambda_seed
            .and_then(|seed| lambda_candidate_from_seed(rates, keys, arrivals, 2.0 * iwl, seed))
    });
    if let Some((lambda0, dn, lcount)) = candidate {
        if let Some((lambda0, post_total)) =
            warm_lambda_verify_fill(rates, keys, arrivals, iwl, lambda0, dn, lcount, out)
        {
            seeds.record_accept();
            seeds.set_lambda(lambda0);
            #[cfg(debug_assertions)]
            crate::qp::check_kkt(out, queues, rates, arrivals, iwl, 1e-6)
                .expect("warm-started solve violates the KKT certificate");
            return Some((iwl, Some(post_total)));
        }
        seeds.record_fallback();
    }
    let lambda0 = lambda0_by_trimming(rates, keys, arrivals, iwl);
    fill_probabilities_cached(rates, keys, arrivals, iwl, lambda0, out);
    seeds.set_lambda(lambda0);
    Some((iwl, None))
}

/// The ideal-workload stage shared by the round solvers: warm-started and
/// verified when `warm` is set and a seed exists, cold otherwise. Always
/// deposits the accepted level as the next solve's seed (warm mode only).
fn iwl_stage(
    queues: &[u64],
    rates: &[f64],
    loads: &[f64],
    arrivals: f64,
    warm: bool,
    seeds: &WarmSeeds,
) -> f64 {
    if !warm {
        return iwl_by_trimming(queues, rates, loads, arrivals);
    }
    let attemptable = seeds.level_sums().is_some() || seeds.level().is_some();
    if attemptable {
        if let Some(level) = warm_iwl(queues, rates, loads, arrivals, seeds) {
            seeds.record_accept();
            seeds.set_level(level);
            return level;
        }
        seeds.record_fallback();
    }
    let level = iwl_by_trimming(queues, rates, loads, arrivals);
    seeds.set_level(level);
    level
}

/// The multiplier-and-fill stage of the Fast pipeline: warm-started and
/// verified when `warm` is set, cold otherwise. Returns the exact
/// index-order sum of the filled probabilities when the pass computed one
/// (warm accepts do, for free), so dispatch callers can skip the alias
/// table's summation pass. In debug builds every warm-accepted distribution
/// is additionally certified against the KKT conditions (`qp::check_kkt`,
/// Eq. 12) — the release-mode gate is the *stronger* exact fixpoint
/// verification, which guarantees bit-identity with the cold solve rather
/// than mere toleranced optimality.
#[allow(clippy::too_many_arguments)] // internal stage: the solve's full table set, not a config surface
fn lambda_fill_stage(
    queues: &[u64],
    rates: &[f64],
    keys: &[f64],
    arrivals: f64,
    iwl: f64,
    warm: bool,
    seeds: &WarmSeeds,
    out: &mut Vec<f64>,
) -> Option<f64> {
    if warm {
        if let Some(seed) = seeds.lambda() {
            if let Some((lambda0, post_total)) =
                warm_lambda0_fill(rates, keys, arrivals, iwl, seed, out)
            {
                seeds.record_accept();
                seeds.set_lambda(lambda0);
                #[cfg(debug_assertions)]
                crate::qp::check_kkt(out, queues, rates, arrivals, iwl, 1e-6)
                    .expect("warm-started solve violates the KKT certificate");
                return Some(post_total);
            }
            seeds.record_fallback();
        }
    }
    let lambda0 = lambda0_by_trimming(rates, keys, arrivals, iwl);
    fill_probabilities_cached(rates, keys, arrivals, iwl, lambda0, out);
    if warm {
        seeds.set_lambda(lambda0);
    }
    #[cfg(not(debug_assertions))]
    let _ = queues;
    None
}

/// Solves one complete SCD round — ideal workload (Algorithm 3) plus optimal
/// probabilities — writing the distribution into `probabilities` and reusing
/// every intermediate buffer from `scratch`. Returns the ideal workload.
///
/// This is the engine-facing, allocation-free counterpart of [`solve`]; the
/// results are identical.
///
/// With `warm` set, the [`SolverKind::Fast`] pipeline seeds its trimming
/// iterations from the scratch's previous accepted solve and verifies the
/// result as an exact fixpoint of the cold iteration (see the module's
/// warm-verification helpers), falling back to the cold solve on any
/// verification failure — so the output is **bit-identical** for either
/// flag value; only the cost differs. [`SolverKind::Quadratic`] (the
/// run-time comparison baseline) always solves cold.
///
/// # Errors
/// See [`SolverError`].
pub fn solve_round_into(
    queues: &[u64],
    rates: &[f64],
    arrivals: f64,
    kind: SolverKind,
    warm: bool,
    scratch: &mut ScdScratch,
    probabilities: &mut Vec<f64>,
) -> Result<f64, SolverError> {
    validate(queues, rates, arrivals)?;
    scratch.refresh_inv_rates(rates);
    let warm = warm && kind == SolverKind::Fast;
    // The scratch path sees fresh queues on every call, so the in-round
    // active-set sums can never be reused — advancing the generation keeps
    // them invalid (only the engine's per-round cache shares them).
    scratch.warm.advance_generation();

    // Ideal workload by sort-free iterative trimming over cached loads.
    scratch.loads.clear();
    scratch.loads.extend(
        queues
            .iter()
            .zip(&scratch.inv_rates)
            .map(|(&q, &inv_mu)| q as f64 * inv_mu),
    );
    let iwl = iwl_stage(queues, rates, &scratch.loads, arrivals, warm, &scratch.warm);

    if arrivals <= SINGLE_JOB_THRESHOLD {
        single_job_probabilities_into(queues, rates, probabilities);
        return Ok(iwl);
    }

    match kind {
        SolverKind::Fast => {
            scratch.keys.clear();
            scratch.keys.extend(
                queues
                    .iter()
                    .zip(&scratch.inv_rates)
                    .map(|(&q, &inv_mu)| (2.0 * q as f64 + 1.0) * inv_mu),
            );
            lambda_fill_stage(
                queues,
                rates,
                &scratch.keys,
                arrivals,
                iwl,
                warm,
                &scratch.warm,
                probabilities,
            );
        }
        SolverKind::Quadratic => {
            // Algorithm 1 is kept for run-time comparisons only; it allocates
            // internally by design.
            let solution = quadratic(queues, rates, arrivals, iwl)?;
            probabilities.clear();
            probabilities.extend_from_slice(&solution.probabilities);
        }
    }
    Ok(iwl)
}

/// Like [`solve_round_into`] but reading the per-round tables (loads and
/// Corollary 1 keys) from the engine's shared [`RoundCache`] instead of
/// recomputing them into the policy's private scratch. With `m` dispatchers
/// per round this amortizes the `O(n)` solver setup `m`-fold.
///
/// The solve is additionally **memoized** in the cache, keyed by
/// `(arrivals, kind)`: within one round the remaining inputs (snapshot,
/// rates) are fixed, so dispatchers whose batch-size estimates collide —
/// the common case under the paper's `a_est = m·a(d)` estimator with
/// equal-rate dispatchers — share one solve per distinct estimate. A memo
/// hit copies back bit-for-bit the vector the fresh solve produced, so
/// memoization never changes decisions, and since the memo is a pure
/// function cache no dispatcher ever observes another's private state.
///
/// The cache computes its tables with exactly the arithmetic
/// [`ScdScratch`] uses, so for any input the two entry points return
/// **bit-identical** probabilities (asserted by this module's tests).
///
/// The cache must have been refreshed (`begin_round`) from exactly this
/// `queues`/`rates` pair.
///
/// With `warm` set, the [`SolverKind::Fast`] pipeline additionally seeds its
/// trimming iterations from the cache's [`WarmSeeds`] — the level and
/// multiplier of the most recent accepted solve, whether from an earlier
/// round or an earlier dispatcher of this round — and verifies each result
/// as an exact fixpoint of the cold iteration, falling back to the cold
/// solve whenever verification fails. Warm and cold are therefore
/// **bit-identical** in output; the seeds, like the memo, are pure
/// accelerators (the engine equivalence tests pin this down).
///
/// # Errors
/// See [`SolverError`].
pub fn solve_round_cached(
    queues: &[u64],
    rates: &[f64],
    cache: &RoundCache,
    arrivals: f64,
    kind: SolverKind,
    warm: bool,
    probabilities: &mut Vec<f64>,
) -> Result<f64, SolverError> {
    validate(queues, rates, arrivals)?;
    // A stale, mismatched, or under-filled cache (e.g. one refreshed with a
    // reciprocal-only demand) would yield a silently wrong distribution or
    // an out-of-bounds panic, so reject it like any other malformed cluster
    // description — in release builds too.
    if cache.num_servers() != queues.len()
        || cache.loads().len() != queues.len()
        || cache.scd_keys().len() != queues.len()
    {
        return Err(SolverError::InvalidCluster {
            queues: queues.len(),
            rates: cache.loads().len().min(cache.num_servers()),
        });
    }

    if let Some(iwl) = cache.solver_memo_lookup(arrivals, kind.memo_tag(), probabilities) {
        return Ok(iwl);
    }

    let (iwl, _total) = solve_round_cached_inner(
        queues,
        rates,
        cache,
        arrivals,
        kind,
        warm,
        true,
        probabilities,
    )?;
    Ok(iwl)
}

/// The memo-missed solve shared by [`solve_round_cached`] and
/// [`scd_dispatch_cached`]: returns the ideal workload plus, when a warm
/// fill computed it, the exact index-order sum of the probabilities.
/// `store_probs` controls whether the result is recorded in the
/// probability memo (the dispatch kernel records finished alias tables
/// instead — storing the distribution too would be pure copying cost).
#[allow(clippy::too_many_arguments)] // internal stage: the solve's full table set, not a config surface
fn solve_round_cached_inner(
    queues: &[u64],
    rates: &[f64],
    cache: &RoundCache,
    arrivals: f64,
    kind: SolverKind,
    warm: bool,
    store_probs: bool,
    probabilities: &mut Vec<f64>,
) -> Result<(f64, Option<f64>), SolverError> {
    let warm = warm && kind == SolverKind::Fast;
    let seeds = cache.warm_seeds();

    // The warm cached Fast pipeline runs both stages through the fused
    // `warm_fast_solve`; every other combination goes through the separate
    // stages.
    if warm && kind == SolverKind::Fast && arrivals > SINGLE_JOB_THRESHOLD {
        // Fallbacks are counted only when a seed existed to attempt (the
        // first solve of a run has nothing to fall back *from*).
        let attemptable = seeds.level_sums().is_some() || seeds.level().is_some();
        let solved = warm_fast_solve(
            queues,
            rates,
            cache.loads(),
            cache.scd_keys(),
            arrivals,
            seeds,
            probabilities,
        );
        let (iwl, total) = match solved {
            Some(result) => result,
            None => {
                // The level stage could not be warm-verified: full cold
                // solve, re-seeding both stages for the next attempt.
                if attemptable {
                    seeds.record_fallback();
                }
                let iwl = iwl_by_trimming(queues, rates, cache.loads(), arrivals);
                seeds.set_level(iwl);
                let keys = cache.scd_keys();
                let lambda0 = lambda0_by_trimming(rates, keys, arrivals, iwl);
                fill_probabilities_cached(rates, keys, arrivals, iwl, lambda0, probabilities);
                seeds.set_lambda(lambda0);
                (iwl, None)
            }
        };
        if store_probs {
            cache.solver_memo_store(arrivals, kind.memo_tag(), iwl, probabilities);
        }
        return Ok((iwl, total));
    }

    let iwl = iwl_stage(queues, rates, cache.loads(), arrivals, warm, seeds);

    if arrivals <= SINGLE_JOB_THRESHOLD {
        single_job_probabilities_into(queues, rates, probabilities);
        if store_probs {
            cache.solver_memo_store(arrivals, kind.memo_tag(), iwl, probabilities);
        }
        return Ok((iwl, None));
    }

    let mut total = None;
    match kind {
        SolverKind::Fast => {
            total = lambda_fill_stage(
                queues,
                rates,
                cache.scd_keys(),
                arrivals,
                iwl,
                warm,
                seeds,
                probabilities,
            );
        }
        SolverKind::Quadratic => {
            let solution = quadratic(queues, rates, arrivals, iwl)?;
            probabilities.clear();
            probabilities.extend_from_slice(&solution.probabilities);
        }
    }
    if store_probs {
        cache.solver_memo_store(arrivals, kind.memo_tag(), iwl, probabilities);
    }
    Ok((iwl, total))
}

/// One-call dispatch kernel for the engine path: memoized solve,
/// alias-table construction and destination sampling, with every sharing
/// opportunity exploited.
///
/// * In warm mode the per-round memo holds **finished alias tables built in
///   place**: the first dispatcher with a given `(a_est, kind)` solves and
///   builds the table directly inside the memo entry; later equal-estimate
///   dispatchers sample straight from it — no solve, no construction, no
///   copying anywhere ([`RoundCache::sampler_memo_draw`]).
/// * A warm-accepted fill already knows the exact index-order sum of the
///   probabilities, so the table construction skips its validation and
///   summation passes ([`AliasSampler::rebuild_with_total`]).
/// * With `warm == false` the kernel is exactly the PR 4 decision path:
///   probability memo, a full [`AliasSampler::rebuild`] into the policy's
///   private `sampler`, then per-job draws. (`sampler` also serves as the
///   warm path's fallback table when the memo is at capacity.)
///
/// The table is a deterministic function of the probability vector, the
/// solve is bit-identical for either `warm` flag, and every path draws with
/// the same per-job arithmetic from bit-identical tables, so the appended
/// destinations are **bit-identical across all of these paths** — the
/// engine equivalence tests pin this down end to end.
///
/// # Errors
/// See [`SolverError`].
#[allow(clippy::too_many_arguments)] // engine-facing kernel: the full decision state, not a config surface
pub fn scd_dispatch_cached(
    queues: &[u64],
    rates: &[f64],
    cache: &RoundCache,
    arrivals: f64,
    kind: SolverKind,
    warm: bool,
    batch: usize,
    probabilities: &mut Vec<f64>,
    sampler: &mut AliasSampler,
    out: &mut Vec<scd_model::ServerId>,
    rng: &mut dyn rand::RngCore,
) -> Result<f64, SolverError> {
    validate(queues, rates, arrivals)?;
    if cache.num_servers() != queues.len()
        || cache.loads().len() != queues.len()
        || cache.scd_keys().len() != queues.len()
    {
        return Err(SolverError::InvalidCluster {
            queues: queues.len(),
            rates: cache.loads().len().min(cache.num_servers()),
        });
    }
    let tag = kind.memo_tag();
    if warm {
        if let Some(iwl) = cache.sampler_memo_draw(arrivals, tag, batch, out, rng) {
            return Ok(iwl);
        }
        let (iwl, total) = solve_round_cached_inner(
            queues,
            rates,
            cache,
            arrivals,
            kind,
            true,
            false,
            probabilities,
        )?;
        if !cache.sampler_memo_build_draw(arrivals, tag, iwl, probabilities, total, batch, out, rng)
        {
            // Memo at capacity: build a private table and draw from it —
            // same table bits, same draw arithmetic.
            match total {
                Some(total) if total > 0.0 => sampler.rebuild_with_total(probabilities, total),
                _ => sampler
                    .rebuild(probabilities)
                    .expect("solver output is a valid probability vector"),
            }
            out.extend((0..batch).map(|_| scd_model::ServerId::new(sampler.sample(rng))));
        }
        return Ok(iwl);
    }
    // Cold: the PR 4 decision path, verbatim.
    let iwl = match cache.solver_memo_lookup(arrivals, tag, probabilities) {
        Some(iwl) => iwl,
        None => {
            let (iwl, _total) = solve_round_cached_inner(
                queues,
                rates,
                cache,
                arrivals,
                kind,
                false,
                true,
                probabilities,
            )?;
            iwl
        }
    };
    sampler
        .rebuild(probabilities)
        .expect("solver output is a valid probability vector");
    out.extend((0..batch).map(|_| scd_model::ServerId::new(sampler.sample(rng))));
    Ok(iwl)
}

/// Class-compressed dispatch kernel — the mean-field-scale counterpart of
/// [`scd_dispatch_cached`]. Instead of materializing a per-server
/// probability vector (`O(n)` fill + normalize + alias build per distinct
/// estimate), it solves the round over the snapshot's `(q, µ)` equivalence
/// classes (`scd_model::ClassPartition`, `O(C)` with `C ≪ n`), builds a
/// class-level alias table once per distinct estimate, and samples each
/// destination with two `u64` draws: an alias draw over classes followed by
/// a uniform member pick inside the chosen class.
///
/// The sampled **distribution is exact**: all members of a class carry
/// identical probability under the solver's closed form, so
/// `P(s) = w_c/Σw · 1/count_c` equals the per-server probability of *this*
/// solve. The grouped trimming fixpoints can differ from the dense sweeps
/// in the last ulps, and each job consumes two RNG draws instead of one, so
/// adopting this kernel is a deliberate sample-path change (the engine
/// goldens were re-captured when it landed). The kernel itself is a pure
/// function of the snapshot: delta-repaired, cold, and sharded rounds all
/// make identical decisions for identical seeds.
///
/// Returns `Ok(None)` — caller falls back to the dense kernel — when the
/// snapshot is not viable for compression (cell budget exceeded, see the
/// partition docs) or `kind` is not [`SolverKind::Fast`] (the quadratic
/// baseline exists to measure the dense algorithm). `Ok(Some(iwl))` means
/// `batch` destinations were appended to `out`.
///
/// # Errors
/// See [`SolverError`].
#[allow(clippy::too_many_arguments)] // engine-facing kernel: the full decision state, not a config surface
pub fn scd_dispatch_compressed(
    queues: &[u64],
    rates: &[f64],
    cache: &RoundCache,
    arrivals: f64,
    kind: SolverKind,
    batch: usize,
    class_weights: &mut Vec<f64>,
    sampler: &mut AliasSampler,
    out: &mut Vec<scd_model::ServerId>,
    rng: &mut dyn rand::RngCore,
) -> Result<Option<f64>, SolverError> {
    validate(queues, rates, arrivals)?;
    if cache.num_servers() != queues.len() {
        return Err(SolverError::InvalidCluster {
            queues: queues.len(),
            rates: cache.num_servers(),
        });
    }
    if kind != SolverKind::Fast {
        return Ok(None);
    }
    let tag = kind.memo_tag();
    if let Some(iwl) = cache.class_sampler_memo_draw(arrivals, tag, batch, out, rng) {
        return Ok(Some(iwl));
    }
    let Some(part) = cache.class_partition() else {
        return Ok(None);
    };

    // Grouped solve over the canonical class tables: water level, then
    // either the single-job closed form (Eq. 9) or the KKT multiplier with
    // the per-class weight `w_c = count_c·p_member = count_c·µ·(2·iwl − Λ0
    // − key_c)⁺ / (2(a−1))`, accumulated in class order so the alias build
    // can skip its summation pass.
    let iwl = crate::iwl::iwl_by_trimming_grouped(part.cq(), part.cmu(), part.loads(), arrivals);
    class_weights.clear();
    let mut total = 0.0;
    if arrivals <= SINGLE_JOB_THRESHOLD {
        // Single arriving job: all mass spreads uniformly over the servers
        // minimizing the Corollary 1 key — i.e. class weight ∝ member count
        // for the minimal-key classes (same tie tolerance as the dense
        // closed form).
        let min_key = part.keys().iter().copied().fold(f64::INFINITY, f64::min);
        let tol = 1e-12 * (1.0 + min_key.abs());
        for (&key, &count) in part.keys().iter().zip(part.counts()) {
            let w = if (key - min_key).abs() <= tol {
                count as f64
            } else {
                0.0
            };
            total += w;
            class_weights.push(w);
        }
    } else {
        let lambda0 = lambda0_by_trimming_grouped(part.cmu(), part.keys(), arrivals, iwl);
        let inv_2a1 = 1.0 / (2.0 * (arrivals - 1.0));
        let c2 = 2.0 * iwl - lambda0;
        for (&mu_mass, &key) in part.cmu().iter().zip(part.keys()) {
            let w = mu_mass * (c2 - key) * inv_2a1;
            let kept = if w > 0.0 { w } else { 0.0 };
            total += kept;
            class_weights.push(kept);
        }
    }

    if !cache.class_sampler_memo_build_draw(
        arrivals,
        tag,
        iwl,
        class_weights,
        (total > 0.0).then_some(total),
        batch,
        out,
        rng,
    ) {
        // Memo at capacity: build a private class table and run the same
        // two-level draws against it.
        if total > 0.0 {
            sampler.rebuild_with_total(class_weights, total);
        } else {
            sampler
                .rebuild(class_weights)
                .expect("grouped solver output is a valid weight vector");
        }
        out.extend((0..batch).map(|_| {
            let class = sampler.sample(rng);
            scd_model::ServerId::new(part.member(class, rng.next_u64()) as usize)
        }));
    }
    Ok(Some(iwl))
}

fn validate(queues: &[u64], rates: &[f64], arrivals: f64) -> Result<(), SolverError> {
    if queues.is_empty() || queues.len() != rates.len() {
        return Err(SolverError::InvalidCluster {
            queues: queues.len(),
            rates: rates.len(),
        });
    }
    if !arrivals.is_finite() || arrivals < 1.0 {
        return Err(SolverError::InvalidArrivals(arrivals));
    }
    Ok(())
}

/// Solves the full per-round problem: computes the IWL (Algorithm 3) and then
/// the optimal probabilities with the requested solver.
///
/// # Errors
/// See [`SolverError`].
pub fn solve(
    queues: &[u64],
    rates: &[f64],
    arrivals: f64,
    kind: SolverKind,
) -> Result<ScdSolution, SolverError> {
    validate(queues, rates, arrivals)?;
    let iwl = compute_iwl(queues, rates, arrivals);
    solve_with_iwl(queues, rates, arrivals, iwl, kind)
}

/// Like [`solve`] but with a caller-supplied ideal workload (useful when the
/// IWL is computed once and reused, as Algorithm 2 does).
///
/// # Errors
/// See [`SolverError`].
pub fn solve_with_iwl(
    queues: &[u64],
    rates: &[f64],
    arrivals: f64,
    iwl: f64,
    kind: SolverKind,
) -> Result<ScdSolution, SolverError> {
    validate(queues, rates, arrivals)?;
    if arrivals <= SINGLE_JOB_THRESHOLD {
        return Ok(single_job_solution(queues, rates, iwl));
    }
    match kind {
        SolverKind::Fast => {
            let order = sorted_by_key(queues, rates);
            fast_with_order(queues, rates, arrivals, iwl, &order)
        }
        SolverKind::Quadratic => quadratic(queues, rates, arrivals, iwl),
    }
}

/// Computes only the probability vector (convenience wrapper over
/// [`solve_with_iwl`]).
///
/// # Errors
/// See [`SolverError`].
///
/// # Example
/// ```
/// use scd_core::solver::{compute_probabilities, SolverKind};
/// use scd_core::iwl::compute_iwl;
/// let queues = [9u64, 0, 0, 0, 0, 0, 0, 0, 0];
/// let rates = [10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// let iwl = compute_iwl(&queues, &rates, 7.0);
/// let p = compute_probabilities(&queues, &rates, 7.0, iwl, SolverKind::Fast).unwrap();
/// // Figure 2b: the fast server is above the IWL yet keeps probability ≈ 0.222.
/// assert!((p[0] - 2.0 / 9.0).abs() < 1e-6);
/// ```
pub fn compute_probabilities(
    queues: &[u64],
    rates: &[f64],
    arrivals: f64,
    iwl: f64,
    kind: SolverKind,
) -> Result<Vec<f64>, SolverError> {
    solve_with_iwl(queues, rates, arrivals, iwl, kind).map(|s| s.probabilities)
}

/// Algorithm 1: evaluates every candidate prefix from scratch (`O(n²)`).
///
/// # Errors
/// See [`SolverError`].
pub fn compute_probabilities_quadratic(
    queues: &[u64],
    rates: &[f64],
    arrivals: f64,
    iwl: f64,
) -> Result<ScdSolution, SolverError> {
    validate(queues, rates, arrivals)?;
    if arrivals <= SINGLE_JOB_THRESHOLD {
        return Ok(single_job_solution(queues, rates, iwl));
    }
    quadratic(queues, rates, arrivals, iwl)
}

/// Algorithm 4: maintains running sums so every prefix costs `O(1)`
/// (`O(n log n)` including the sort).
///
/// # Errors
/// See [`SolverError`].
pub fn compute_probabilities_fast(
    queues: &[u64],
    rates: &[f64],
    arrivals: f64,
    iwl: f64,
) -> Result<ScdSolution, SolverError> {
    validate(queues, rates, arrivals)?;
    if arrivals <= SINGLE_JOB_THRESHOLD {
        return Ok(single_job_solution(queues, rates, iwl));
    }
    let order = sorted_by_key(queues, rates);
    fast_with_order(queues, rates, arrivals, iwl, &order)
}

/// Algorithm 4 given a pre-computed candidate order (`O(n)`), as used by
/// Algorithm 2 when the sorted order is maintained incrementally.
///
/// `order` must list all server indices sorted by `(2q_s + 1)/µ_s`, e.g. as
/// produced by [`sorted_by_key`].
///
/// # Errors
/// See [`SolverError`].
pub fn compute_probabilities_fast_with_order(
    queues: &[u64],
    rates: &[f64],
    arrivals: f64,
    iwl: f64,
    order: &[usize],
) -> Result<ScdSolution, SolverError> {
    validate(queues, rates, arrivals)?;
    if arrivals <= SINGLE_JOB_THRESHOLD {
        return Ok(single_job_solution(queues, rates, iwl));
    }
    fast_with_order(queues, rates, arrivals, iwl, order)
}

/// Eq. 9: with a single arriving job no coordination is needed — all the
/// probability mass goes to the servers minimizing `(2q_s + 1)/µ_s`.
/// The mass may be split arbitrarily among ties; we split it uniformly, which
/// keeps the solution deterministic.
fn single_job_solution(queues: &[u64], rates: &[f64], iwl: f64) -> ScdSolution {
    let mut probabilities = Vec::with_capacity(queues.len());
    let probable_set_size = single_job_probabilities_into(queues, rates, &mut probabilities);
    ScdSolution {
        probabilities,
        iwl,
        lambda0: None,
        probable_set_size,
        objective: 0.0,
    }
}

/// Allocation-free body of the single-job closed form: two passes, one to
/// find the minimal key and count its ties, one to spread the mass.
/// Returns the probable-set size.
fn single_job_probabilities_into(queues: &[u64], rates: &[f64], out: &mut Vec<f64>) -> usize {
    let n = queues.len();
    let key = |i: usize| (2.0 * queues[i] as f64 + 1.0) / rates[i];
    let min_key = (0..n).map(key).fold(f64::INFINITY, f64::min);
    let tie = |i: usize| (key(i) - min_key).abs() <= 1e-12 * (1.0 + min_key.abs());
    let winners = (0..n).filter(|&i| tie(i)).count();
    let share = 1.0 / winners as f64;
    out.clear();
    out.extend((0..n).map(|i| if tie(i) { share } else { 0.0 }));
    winners
}

/// Shared closed-form pieces (Eq. 14 / Eq. 16).
#[inline]
fn probability_numerator(q: u64, mu: f64, iwl: f64, lambda0: f64) -> f64 {
    -2.0 * (q as f64 - mu * iwl) - 1.0 - mu * lambda0
}

fn quadratic(
    queues: &[u64],
    rates: &[f64],
    arrivals: f64,
    iwl: f64,
) -> Result<ScdSolution, SolverError> {
    let n = queues.len();
    let a = arrivals;
    let order = sorted_by_key(queues, rates);

    let mut best_val = f64::INFINITY;
    let mut best: Option<(Vec<f64>, f64, usize)> = None;

    // Candidate set O grows one server at a time in key order (Corollary 1).
    for j in 1..=n {
        let candidate = &order[..j];
        // Λ0 per Eq. 16, computed from scratch (this is what makes the
        // algorithm quadratic).
        let mut num = 0.0;
        let mut den = 0.0;
        for &s in candidate {
            num += 2.0 * (rates[s] * iwl - queues[s] as f64) - 1.0;
            den += rates[s];
        }
        num -= 2.0 * (a - 1.0);
        let lambda0 = num / den;

        // Probabilities per Eq. 14; reject the prefix if any is negative.
        let mut probs = vec![0.0; n];
        let mut feasible = true;
        for &s in candidate {
            let p = probability_numerator(queues[s], rates[s], iwl, lambda0) / (2.0 * (a - 1.0));
            if p < -FEASIBILITY_TOLERANCE {
                feasible = false;
                break;
            }
            probs[s] = p.max(0.0);
        }
        if !feasible {
            continue;
        }

        // Objective per Eq. 10 over the candidate set.
        let mut val = 0.0;
        for &s in candidate {
            let p = probs[s];
            val += (a - 1.0) * p * p / rates[s]
                + (2.0 * (queues[s] as f64 - rates[s] * iwl) + 1.0) / rates[s] * p;
        }
        if val < best_val {
            best_val = val;
            best = Some((probs, lambda0, j));
        }
    }

    let (mut probabilities, lambda0, prefix) = best.ok_or(SolverError::NoFeasiblePrefix)?;
    normalize(&mut probabilities);
    let _ = prefix;
    let probable_set_size = probabilities.iter().filter(|&&p| p > 0.0).count();
    Ok(ScdSolution {
        probabilities,
        iwl,
        lambda0: Some(lambda0),
        probable_set_size,
        objective: best_val,
    })
}

/// The scan of Algorithm 4: returns the optimal `(Λ0, objective)` pair for a
/// pre-sorted candidate order. Performs no heap allocations.
fn fast_lambda0(
    queues: &[u64],
    rates: &[f64],
    arrivals: f64,
    iwl: f64,
    order: &[usize],
) -> Result<(f64, f64), SolverError> {
    let n = queues.len();
    if order.len() != n {
        return Err(SolverError::InvalidCluster {
            queues: n,
            rates: order.len(),
        });
    }
    let a = arrivals;

    // Running sums for Λ0 (numerator / denominator of Eq. 16) and for the
    // objective value via Lemma 2 (v1, v2).
    let mut lambda_num = -2.0 * (a - 1.0);
    let mut lambda_den = 0.0;
    let mut v1 = 0.0;
    let mut v2 = 0.0;

    let mut best_val = f64::INFINITY;
    let mut best_lambda0 = f64::NAN;
    let mut found = false;

    for &r in order {
        let q = queues[r] as f64;
        let mu = rates[r];
        let key = (2.0 * q + 1.0) / mu;

        lambda_num += 2.0 * (mu * iwl - q) - 1.0;
        lambda_den += mu;
        let lambda0 = lambda_num / lambda_den;

        // NOTE: the paper's Algorithm 4 skips the v1/v2 update for infeasible
        // prefixes; that would corrupt the objective of later (feasible)
        // prefixes, so we accumulate unconditionally and only gate the
        // comparison (see DESIGN.md, "Algorithm 4 accumulator fix").
        v1 += mu / (4.0 * (a - 1.0));
        v2 += (2.0 * (q - mu * iwl) + 1.0).powi(2) / (4.0 * mu * (a - 1.0));

        // Primal feasibility needs testing only for the largest-key member of
        // the prefix, i.e. the server just added (Eq. 17, corrected to 2·iwl).
        let feasible = 2.0 * iwl - key >= lambda0 - FEASIBILITY_TOLERANCE;
        if !feasible {
            continue;
        }
        let val = v1 * lambda0 * lambda0 - v2;
        if val < best_val {
            best_val = val;
            best_lambda0 = lambda0;
            found = true;
        }
    }

    if !found {
        return Err(SolverError::NoFeasiblePrefix);
    }
    Ok((best_lambda0, best_val))
}

/// Materializes the probability vector for a known `Λ0` into `out` (cleared
/// first) and returns the probable-set size. Performs no heap allocations
/// beyond growing `out` to the cluster size once.
fn fill_probabilities(
    queues: &[u64],
    rates: &[f64],
    arrivals: f64,
    iwl: f64,
    lambda0: f64,
    out: &mut Vec<f64>,
) -> usize {
    let n = queues.len();
    out.clear();
    let mut probable_set_size = 0;
    for s in 0..n {
        let p = probability_numerator(queues[s], rates[s], iwl, lambda0) / (2.0 * (arrivals - 1.0));
        if p > 0.0 {
            probable_set_size += 1;
            out.push(p);
        } else {
            out.push(0.0);
        }
    }
    normalize(out);
    probable_set_size
}

/// Division-light variant of [`fill_probabilities`] from cached keys:
/// `p_s = µ_s·(2·iwl − λ0 − key_s) / (2(a−1))`, clipped at zero. Returns the
/// probable-set size.
fn fill_probabilities_cached(
    rates: &[f64],
    keys: &[f64],
    arrivals: f64,
    iwl: f64,
    lambda0: f64,
    out: &mut Vec<f64>,
) -> usize {
    let inv_2a1 = 1.0 / (2.0 * (arrivals - 1.0));
    let c = 2.0 * iwl - lambda0;
    out.clear();
    let mut probable_set_size = 0;
    for (&mu, &key) in rates.iter().zip(keys) {
        let p = mu * (c - key) * inv_2a1;
        if p > 0.0 {
            probable_set_size += 1;
            out.push(p);
        } else {
            out.push(0.0);
        }
    }
    normalize(out);
    probable_set_size
}

fn fast_with_order(
    queues: &[u64],
    rates: &[f64],
    arrivals: f64,
    iwl: f64,
    order: &[usize],
) -> Result<ScdSolution, SolverError> {
    let (best_lambda0, best_val) = fast_lambda0(queues, rates, arrivals, iwl, order)?;
    let mut probabilities = Vec::with_capacity(queues.len());
    let probable_set_size = fill_probabilities(
        queues,
        rates,
        arrivals,
        iwl,
        best_lambda0,
        &mut probabilities,
    );
    Ok(ScdSolution {
        probabilities,
        iwl,
        lambda0: Some(best_lambda0),
        probable_set_size,
        objective: best_val,
    })
}

/// Rescales the probabilities so they sum to exactly 1, absorbing
/// floating-point drift. The drift is bounded by solver round-off and is
/// asserted (in debug builds) to be tiny.
fn normalize(probabilities: &mut [f64]) {
    let total: f64 = probabilities.iter().sum();
    debug_assert!(
        (total - 1.0).abs() < 1e-6,
        "solver produced probabilities summing to {total}"
    );
    if total > 0.0 {
        let inv_total = 1.0 / total;
        for p in probabilities.iter_mut() {
            *p *= inv_total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iwl::compute_iwl;
    use crate::qp::{check_kkt, exhaustive_solution, objective};
    use rand::Rng;
    use rand::SeedableRng;

    fn both_solvers(queues: &[u64], rates: &[f64], a: f64) -> (ScdSolution, ScdSolution) {
        let iwl = compute_iwl(queues, rates, a);
        let fast = compute_probabilities_fast(queues, rates, a, iwl).unwrap();
        let quad = compute_probabilities_quadratic(queues, rates, a, iwl).unwrap();
        (fast, quad)
    }

    #[test]
    fn figure2_fast_server_keeps_positive_probability() {
        // One fast (µ=10, q=9) + eight slow (µ=1, q=0) servers, a = 7.
        let mut queues = vec![9u64];
        queues.extend(std::iter::repeat_n(0, 8));
        let mut rates = vec![10.0];
        rates.extend(std::iter::repeat_n(1.0, 8));

        let (fast, quad) = both_solvers(&queues, &rates, 7.0);
        for sol in [&fast, &quad] {
            assert!((sol.iwl - 0.875).abs() < 1e-9);
            // Analytical solution: p_fast = 2/9, p_slow = 7/72 each.
            assert!(
                (sol.probabilities[0] - 2.0 / 9.0).abs() < 1e-9,
                "fast-server probability {} should be 2/9",
                sol.probabilities[0]
            );
            for s in 1..9 {
                assert!((sol.probabilities[s] - 7.0 / 72.0).abs() < 1e-9);
            }
            // The fast server is above the IWL (0.9 > 0.875) yet in S+.
            assert_eq!(sol.probable_set_size, 9);
            // Expected number of jobs it receives ≈ 1.55 (the paper's Figure 2b).
            let expected_jobs = 7.0 * sol.probabilities[0];
            assert!((expected_jobs - 1.5555).abs() < 1e-3);
            // Expected post-dispatch workload of a slow server ≈ 0.68.
            let slow_wl = 7.0 * sol.probabilities[1] / 1.0;
            assert!((slow_wl - 0.68).abs() < 0.01);
        }
    }

    #[test]
    fn homogeneous_probable_set_is_below_iwl_servers() {
        // In a homogeneous system the probable set has the closed form
        // {s : q_s/µ < iwl} whenever those servers can absorb the arrivals.
        let queues = [0u64, 1, 2, 10, 10];
        let rates = [1.0; 5];
        let a = 6.0;
        let iwl = compute_iwl(&queues, &rates, a);
        assert!((iwl - 3.0).abs() < 1e-9);
        let sol = compute_probabilities_fast(&queues, &rates, a, iwl).unwrap();
        assert!(sol.probabilities[3] == 0.0 && sol.probabilities[4] == 0.0);
        assert!(sol.probabilities[0] > sol.probabilities[1]);
        assert!(sol.probabilities[1] > sol.probabilities[2]);
        let total: f64 = sol.probabilities.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_job_goes_to_minimal_key_server() {
        let queues = [5u64, 0, 3];
        let rates = [10.0, 1.0, 4.0];
        // keys: (2*5+1)/10 = 1.1, (2*0+1)/1 = 1.0, (2*3+1)/4 = 1.75.
        let iwl = compute_iwl(&queues, &rates, 1.0);
        let sol = solve_with_iwl(&queues, &rates, 1.0, iwl, SolverKind::Fast).unwrap();
        assert_eq!(sol.probabilities, vec![0.0, 1.0, 0.0]);
        assert_eq!(sol.lambda0, None);
        assert_eq!(sol.probable_set_size, 1);
        // The quadratic path takes the same branch.
        let sol2 = solve_with_iwl(&queues, &rates, 1.0, iwl, SolverKind::Quadratic).unwrap();
        assert_eq!(sol.probabilities, sol2.probabilities);
    }

    #[test]
    fn single_job_ties_are_split_uniformly() {
        let queues = [0u64, 0, 7];
        let rates = [1.0, 1.0, 1.0];
        let iwl = compute_iwl(&queues, &rates, 1.0);
        let sol = solve_with_iwl(&queues, &rates, 1.0, iwl, SolverKind::Fast).unwrap();
        assert!((sol.probabilities[0] - 0.5).abs() < 1e-12);
        assert!((sol.probabilities[1] - 0.5).abs() < 1e-12);
        assert_eq!(sol.probabilities[2], 0.0);
    }

    #[test]
    fn two_jobs_on_empty_homogeneous_pair_split_evenly() {
        let queues = [0u64, 0];
        let rates = [1.0, 1.0];
        let (fast, quad) = both_solvers(&queues, &rates, 2.0);
        for sol in [fast, quad] {
            assert!((sol.probabilities[0] - 0.5).abs() < 1e-12);
            assert!((sol.probabilities[1] - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn fast_and_quadratic_agree_on_random_instances() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..300 {
            let n = rng.gen_range(1..60);
            let queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..30)).collect();
            let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..20.0)).collect();
            let a = rng.gen_range(2..200) as f64;
            let iwl = compute_iwl(&queues, &rates, a);
            let fast = compute_probabilities_fast(&queues, &rates, a, iwl).unwrap();
            let quad = compute_probabilities_quadratic(&queues, &rates, a, iwl).unwrap();
            for (pf, pq) in fast.probabilities.iter().zip(&quad.probabilities) {
                assert!(
                    (pf - pq).abs() < 1e-6,
                    "solvers disagree: {pf} vs {pq} (n={n}, a={a})"
                );
            }
            let of = objective(&fast.probabilities, &queues, &rates, a, iwl);
            let oq = objective(&quad.probabilities, &queues, &rates, a, iwl);
            assert!((of - oq).abs() < 1e-6);
        }
    }

    #[test]
    fn solvers_match_exhaustive_search_on_small_instances() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        for _ in 0..150 {
            let n = rng.gen_range(1..9);
            let queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..12)).collect();
            let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..10.0)).collect();
            let a = rng.gen_range(2..40) as f64;
            let iwl = compute_iwl(&queues, &rates, a);
            let fast = compute_probabilities_fast(&queues, &rates, a, iwl).unwrap();
            let reference = exhaustive_solution(&queues, &rates, a, iwl);
            let fast_obj = objective(&fast.probabilities, &queues, &rates, a, iwl);
            let ref_obj = objective(&reference, &queues, &rates, a, iwl);
            assert!(
                fast_obj <= ref_obj + 1e-7,
                "fast solver is suboptimal: {fast_obj} vs exhaustive {ref_obj}"
            );
            for (pf, pr) in fast.probabilities.iter().zip(&reference) {
                assert!((pf - pr).abs() < 1e-5, "probabilities differ: {pf} vs {pr}");
            }
        }
    }

    #[test]
    fn solutions_satisfy_kkt_conditions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..100 {
            let n = rng.gen_range(2..40);
            let queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..25)).collect();
            let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..15.0)).collect();
            let a = rng.gen_range(2..100) as f64;
            let iwl = compute_iwl(&queues, &rates, a);
            let sol = compute_probabilities_fast(&queues, &rates, a, iwl).unwrap();
            check_kkt(&sol.probabilities, &queues, &rates, a, iwl, 1e-6)
                .expect("fast solution violates KKT");
        }
    }

    #[test]
    fn probable_set_is_a_prefix_of_the_key_order() {
        // Lemma 1 / Corollary 1: S+ is a prefix of the servers sorted by
        // (2q+1)/µ.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let n = rng.gen_range(2..30);
            let queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..20)).collect();
            let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..10.0)).collect();
            let a = rng.gen_range(2..60) as f64;
            let iwl = compute_iwl(&queues, &rates, a);
            let sol = compute_probabilities_fast(&queues, &rates, a, iwl).unwrap();
            let order = sorted_by_key(&queues, &rates);
            let mut seen_zero = false;
            for &s in &order {
                if sol.probabilities[s] <= 0.0 {
                    seen_zero = true;
                } else {
                    assert!(
                        !seen_zero,
                        "positive probability after a zero in key order — S+ is not a prefix"
                    );
                }
            }
        }
    }

    #[test]
    fn presorted_fast_variant_matches() {
        let queues = [4u64, 0, 2, 9, 1];
        let rates = [2.0, 1.0, 5.0, 3.0, 1.5];
        let a = 11.0;
        let iwl = compute_iwl(&queues, &rates, a);
        let auto = compute_probabilities_fast(&queues, &rates, a, iwl).unwrap();
        let order = sorted_by_key(&queues, &rates);
        let manual =
            compute_probabilities_fast_with_order(&queues, &rates, a, iwl, &order).unwrap();
        assert_eq!(auto.probabilities, manual.probabilities);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(matches!(
            solve(&[], &[], 2.0, SolverKind::Fast),
            Err(SolverError::InvalidCluster { .. })
        ));
        assert!(matches!(
            solve(&[1, 2], &[1.0], 2.0, SolverKind::Fast),
            Err(SolverError::InvalidCluster { .. })
        ));
        assert!(matches!(
            solve(&[1], &[1.0], 0.0, SolverKind::Fast),
            Err(SolverError::InvalidArrivals(_))
        ));
        assert!(matches!(
            solve(&[1], &[1.0], f64::NAN, SolverKind::Fast),
            Err(SolverError::InvalidArrivals(_))
        ));
        // Mismatched order length.
        let err = compute_probabilities_fast_with_order(&[1, 2], &[1.0, 1.0], 3.0, 1.0, &[0])
            .unwrap_err();
        assert!(matches!(err, SolverError::InvalidCluster { .. }));
    }

    #[test]
    fn solve_round_into_matches_allocating_path() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31337);
        let mut scratch = ScdScratch::default();
        let mut probs = Vec::new();
        for case in 0..200 {
            let n = rng.gen_range(1..50);
            let queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..30)).collect();
            let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..20.0)).collect();
            // Include the single-job closed form every few cases.
            let a = if case % 5 == 0 {
                1.0
            } else {
                rng.gen_range(2..150) as f64
            };
            for kind in [SolverKind::Fast, SolverKind::Quadratic] {
                let reference = solve(&queues, &rates, a, kind).unwrap();
                let iwl =
                    solve_round_into(&queues, &rates, a, kind, true, &mut scratch, &mut probs)
                        .unwrap();
                assert!(
                    (iwl - reference.iwl).abs() < 1e-12,
                    "case {case} ({kind}): iwl {iwl} vs {}",
                    reference.iwl
                );
                assert_eq!(probs.len(), reference.probabilities.len());
                for (got, want) in probs.iter().zip(&reference.probabilities) {
                    assert!(
                        (got - want).abs() < 1e-12,
                        "case {case} ({kind}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn cached_tables_reproduce_the_scratch_path_bit_for_bit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED);
        let mut scratch = ScdScratch::default();
        let mut cache = RoundCache::new();
        let mut probs_scratch = Vec::new();
        let mut probs_cached = Vec::new();
        for case in 0..200 {
            let n = rng.gen_range(1..60);
            let queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..30)).collect();
            let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..20.0)).collect();
            let a = if case % 7 == 0 {
                1.0
            } else {
                rng.gen_range(2..150) as f64
            };
            cache.begin_round(&queues, &rates);
            for kind in [SolverKind::Fast, SolverKind::Quadratic] {
                let iwl_a = solve_round_into(
                    &queues,
                    &rates,
                    a,
                    kind,
                    true,
                    &mut scratch,
                    &mut probs_scratch,
                )
                .unwrap();
                let iwl_b =
                    solve_round_cached(&queues, &rates, &cache, a, kind, true, &mut probs_cached)
                        .unwrap();
                // Bit-identical, not merely close: the cached tables use the
                // same arithmetic as the private scratch.
                assert_eq!(
                    iwl_a.to_bits(),
                    iwl_b.to_bits(),
                    "case {case} ({kind}): iwl"
                );
                assert_eq!(probs_scratch.len(), probs_cached.len());
                for (s, (pa, pb)) in probs_scratch.iter().zip(&probs_cached).enumerate() {
                    assert_eq!(
                        pa.to_bits(),
                        pb.to_bits(),
                        "case {case} ({kind}): p[{s}] {pa} vs {pb}"
                    );
                }
            }
        }
    }

    #[test]
    fn cached_solver_memoizes_equal_estimates_to_one_solve() {
        // m = 10 dispatchers sharing one round snapshot with equal batch
        // sizes: the first solve is a miss, the other nine are hits, and
        // every hit returns bit-for-bit the missed solve's output.
        let queues = [7u64, 0, 3, 1, 0, 9];
        let rates = [4.0, 1.0, 2.5, 1.0, 8.0, 0.5];
        let mut cache = RoundCache::new();
        cache.begin_round(&queues, &rates);
        let a_est = 30.0; // m·a(d) with equal a(d)
        let mut scratch = ScdScratch::default();
        let mut reference = Vec::new();
        let ref_iwl = solve_round_into(
            &queues,
            &rates,
            a_est,
            SolverKind::Fast,
            true,
            &mut scratch,
            &mut reference,
        )
        .unwrap();
        let mut probs = Vec::new();
        for dispatcher in 0..10 {
            let iwl = solve_round_cached(
                &queues,
                &rates,
                &cache,
                a_est,
                SolverKind::Fast,
                true,
                &mut probs,
            )
            .unwrap();
            assert_eq!(iwl.to_bits(), ref_iwl.to_bits(), "dispatcher {dispatcher}");
            assert_eq!(probs.len(), reference.len());
            for (s, (got, want)) in probs.iter().zip(&reference).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "dispatcher {dispatcher}: p[{s}]"
                );
            }
        }
        assert_eq!(cache.solver_memo_stats(), (9, 1));
    }

    #[test]
    fn cached_solver_memo_discriminates_estimates_and_kinds() {
        let queues = [4u64, 0, 2];
        let rates = [2.0, 1.0, 5.0];
        let mut cache = RoundCache::new();
        cache.begin_round(&queues, &rates);
        let mut probs = Vec::new();
        // Three distinct estimates, each solved twice: 3 misses + 3 hits.
        for _ in 0..2 {
            for a_est in [5.0, 10.0, 15.0] {
                solve_round_cached(
                    &queues,
                    &rates,
                    &cache,
                    a_est,
                    SolverKind::Fast,
                    true,
                    &mut probs,
                )
                .unwrap();
            }
        }
        assert_eq!(cache.solver_memo_stats(), (3, 3));
        // A different solver kind must not hit the Fast entries.
        solve_round_cached(
            &queues,
            &rates,
            &cache,
            5.0,
            SolverKind::Quadratic,
            true,
            &mut probs,
        )
        .unwrap();
        assert_eq!(cache.solver_memo_stats(), (3, 4));
        // A new round invalidates the entries: the same estimate re-solves
        // against the fresh snapshot.
        cache.begin_round(&[9, 9, 9], &rates);
        let mut fresh = Vec::new();
        solve_round_cached(
            &[9, 9, 9],
            &rates,
            &cache,
            5.0,
            SolverKind::Fast,
            true,
            &mut fresh,
        )
        .unwrap();
        assert_eq!(cache.solver_memo_stats(), (3, 5));
        let reference = solve(&[9, 9, 9], &rates, 5.0, SolverKind::Fast).unwrap();
        for (got, want) in fresh.iter().zip(&reference.probabilities) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn cached_solver_memo_covers_the_single_job_closed_form() {
        let queues = [5u64, 0, 3];
        let rates = [10.0, 1.0, 4.0];
        let mut cache = RoundCache::new();
        cache.begin_round(&queues, &rates);
        let mut probs = Vec::new();
        for _ in 0..3 {
            let iwl = solve_round_cached(
                &queues,
                &rates,
                &cache,
                1.0,
                SolverKind::Fast,
                true,
                &mut probs,
            )
            .unwrap();
            assert_eq!(probs, vec![0.0, 1.0, 0.0]);
            assert!(iwl.is_finite());
        }
        assert_eq!(cache.solver_memo_stats(), (2, 1));
    }

    #[test]
    fn cached_solver_rejects_mismatched_caches() {
        // The cache describes a 2-server cluster; the call a 3-server one.
        let mut cache = RoundCache::new();
        cache.begin_round(&[1, 2], &[1.0, 2.0]);
        let mut probs = Vec::new();
        let err = solve_round_cached(
            &[1, 2, 3],
            &[1.0, 2.0, 3.0],
            &cache,
            5.0,
            SolverKind::Fast,
            true,
            &mut probs,
        )
        .unwrap_err();
        assert!(matches!(err, SolverError::InvalidCluster { .. }));
    }

    #[test]
    fn trimming_terminates_on_boundary_oscillation_instance() {
        // Regression: on this homogeneous-cluster state the Λ0 trimming
        // fixpoint used to bounce between two adjacent representable values
        // forever (servers with q = 5 sit exactly on the probable-set
        // boundary). The monotonicity clamp must terminate and still match
        // the sorted Algorithm 4 solution.
        let queues: Vec<u64> = vec![10, 8, 7, 0, 8, 0, 9, 2, 0, 5, 11, 5, 5, 7, 7, 5, 9, 4, 9, 1];
        let rates = vec![3.0f64; 20];
        let a = 44.0;
        let reference = solve(&queues, &rates, a, SolverKind::Fast).unwrap();
        let mut scratch = ScdScratch::default();
        let mut probs = Vec::new();
        let iwl = solve_round_into(
            &queues,
            &rates,
            a,
            SolverKind::Fast,
            true,
            &mut scratch,
            &mut probs,
        )
        .unwrap();
        assert!((iwl - reference.iwl).abs() < 1e-9);
        for (got, want) in probs.iter().zip(&reference.probabilities) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn scratch_survives_cluster_size_changes() {
        let mut scratch = ScdScratch::default();
        let mut probs = Vec::new();
        for n in [5usize, 12, 3, 12, 40, 1] {
            let queues: Vec<u64> = (0..n as u64).collect();
            let rates: Vec<f64> = (1..=n).map(|i| i as f64).collect();
            let reference = solve(&queues, &rates, 9.0, SolverKind::Fast).unwrap();
            solve_round_into(
                &queues,
                &rates,
                9.0,
                SolverKind::Fast,
                true,
                &mut scratch,
                &mut probs,
            )
            .unwrap();
            for (got, want) in probs.iter().zip(&reference.probabilities) {
                assert!((got - want).abs() < 1e-12, "n={n}: {got} vs {want}");
            }
        }
    }

    /// The PR 5 warm-start guarantee, hammered at the unit level: over long
    /// drifting queue trajectories (arrivals/departures mutate a few servers
    /// per round, like the engine's rounds do), the warm-started cached
    /// solver returns **bit-for-bit** the cold solver's output every round,
    /// and the warm path actually engages (accept counter advances).
    #[test]
    fn warm_started_solves_are_bit_identical_to_cold_over_drifting_rounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5A3D);
        for case in 0..30 {
            let n = rng.gen_range(2..80);
            // Mix of heterogeneous and homogeneous clusters — the latter
            // produce exact key/load ties, the warm path's hardest inputs.
            let rates: Vec<f64> = if case % 3 == 0 {
                vec![rng.gen_range(1..5) as f64; n]
            } else {
                (0..n).map(|_| rng.gen_range(0.5..20.0)).collect()
            };
            let mut queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..15)).collect();
            let mut warm_cache = RoundCache::new();
            let mut cold_cache = RoundCache::new();
            let mut warm_probs = Vec::new();
            let mut cold_probs = Vec::new();
            for round in 0..120 {
                // Drift a handful of queues (including occasional spikes).
                for _ in 0..rng.gen_range(0..n.div_ceil(8) + 1) {
                    let s = rng.gen_range(0..n);
                    queues[s] = if rng.gen_range(0..4) == 0 {
                        rng.gen_range(0..30)
                    } else {
                        (queues[s] + rng.gen_range(0..3)).saturating_sub(rng.gen_range(0..3))
                    };
                }
                warm_cache.begin_round(&queues, &rates);
                cold_cache.begin_round(&queues, &rates);
                // A couple of nearby estimates per round, like m dispatchers
                // whose batch sizes fluctuate.
                for _ in 0..3 {
                    let a = if rng.gen_range(0..10) == 0 {
                        1.0
                    } else {
                        rng.gen_range(2..60) as f64 + f64::from(rng.gen_range(0..2))
                    };
                    let warm_iwl = solve_round_cached(
                        &queues,
                        &rates,
                        &warm_cache,
                        a,
                        SolverKind::Fast,
                        true,
                        &mut warm_probs,
                    )
                    .unwrap();
                    let cold_iwl = solve_round_cached(
                        &queues,
                        &rates,
                        &cold_cache,
                        a,
                        SolverKind::Fast,
                        false,
                        &mut cold_probs,
                    )
                    .unwrap();
                    assert_eq!(
                        warm_iwl.to_bits(),
                        cold_iwl.to_bits(),
                        "case {case} round {round}: iwl diverged"
                    );
                    assert_eq!(warm_probs.len(), cold_probs.len());
                    for (s, (w, c)) in warm_probs.iter().zip(&cold_probs).enumerate() {
                        assert_eq!(
                            w.to_bits(),
                            c.to_bits(),
                            "case {case} round {round}: p[{s}] {w} vs {c}"
                        );
                    }
                }
            }
            let (accepts, _fallbacks) = warm_cache.warm_seeds().stats();
            assert!(
                accepts > 0,
                "case {case}: warm path never engaged over 120 drifting rounds"
            );
        }
    }

    #[test]
    fn warm_scratch_path_matches_cold_scratch_path_bit_for_bit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xB007);
        let n = 40usize;
        let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..10.0)).collect();
        let mut queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..12)).collect();
        let mut warm_scratch = ScdScratch::default();
        let mut cold_scratch = ScdScratch::default();
        let mut warm_probs = Vec::new();
        let mut cold_probs = Vec::new();
        for round in 0..200 {
            let s = rng.gen_range(0..n);
            queues[s] = rng.gen_range(0..12);
            let a = rng.gen_range(2..40) as f64;
            let warm_iwl = solve_round_into(
                &queues,
                &rates,
                a,
                SolverKind::Fast,
                true,
                &mut warm_scratch,
                &mut warm_probs,
            )
            .unwrap();
            let cold_iwl = solve_round_into(
                &queues,
                &rates,
                a,
                SolverKind::Fast,
                false,
                &mut cold_scratch,
                &mut cold_probs,
            )
            .unwrap();
            assert_eq!(warm_iwl.to_bits(), cold_iwl.to_bits(), "round {round}");
            for (w, c) in warm_probs.iter().zip(&cold_probs) {
                assert_eq!(w.to_bits(), c.to_bits(), "round {round}");
            }
        }
        let (accepts, _) = warm_scratch.warm_seeds().stats();
        assert!(accepts > 0, "warm scratch path never engaged");
    }

    #[test]
    fn warm_path_survives_the_boundary_oscillation_instance() {
        // The homogeneous regression state whose Λ0 fixpoint sits on an
        // exact probable-set boundary: the warm path must either verify or
        // fall back — and in both cases reproduce the cold bits.
        let queues: Vec<u64> = vec![10, 8, 7, 0, 8, 0, 9, 2, 0, 5, 11, 5, 5, 7, 7, 5, 9, 4, 9, 1];
        let rates = vec![3.0f64; 20];
        let mut cache = RoundCache::new();
        cache.begin_round(&queues, &rates);
        let mut cold = Vec::new();
        let cold_iwl = solve_round_cached(
            &queues,
            &rates,
            &cache,
            44.0,
            SolverKind::Fast,
            false,
            &mut cold,
        )
        .unwrap();
        // Seed the warm path with adversarial levels around the fixpoint —
        // verification must reject any seed that would change the result.
        for seed_shift in [-1.0, -1e-12, 0.0, 1e-12, 1.0] {
            let warm_cache = {
                let mut c = RoundCache::new();
                c.begin_round(&queues, &rates);
                c.warm_seeds().set_level(cold_iwl + seed_shift);
                c.warm_seeds().set_lambda(-0.25 + seed_shift);
                c
            };
            let mut warm = Vec::new();
            let warm_iwl = solve_round_cached(
                &queues,
                &rates,
                &warm_cache,
                44.0,
                SolverKind::Fast,
                true,
                &mut warm,
            )
            .unwrap();
            assert_eq!(warm_iwl.to_bits(), cold_iwl.to_bits(), "shift {seed_shift}");
            for (w, c) in warm.iter().zip(&cold) {
                assert_eq!(w.to_bits(), c.to_bits(), "shift {seed_shift}");
            }
        }
    }

    #[test]
    fn quadratic_kind_ignores_warm_seeds() {
        let queues = [4u64, 0, 2];
        let rates = [2.0, 1.0, 5.0];
        let mut cache = RoundCache::new();
        cache.begin_round(&queues, &rates);
        cache.warm_seeds().set_level(123.0);
        cache.warm_seeds().set_lambda(-9.0);
        let mut probs = Vec::new();
        solve_round_cached(
            &queues,
            &rates,
            &cache,
            7.0,
            SolverKind::Quadratic,
            true,
            &mut probs,
        )
        .unwrap();
        let reference = solve(&queues, &rates, 7.0, SolverKind::Quadratic).unwrap();
        for (got, want) in probs.iter().zip(&reference.probabilities) {
            assert!((got - want).abs() < 1e-12);
        }
        // The quadratic baseline neither consumed nor updated the seeds.
        assert_eq!(cache.warm_seeds().stats(), (0, 0));
        assert_eq!(cache.warm_seeds().level(), Some(123.0));
    }

    #[test]
    fn solver_kind_display_names() {
        assert_eq!(SolverKind::Fast.to_string(), "algorithm-4");
        assert_eq!(SolverKind::Quadratic.to_string(), "algorithm-1");
    }

    #[test]
    fn single_server_cluster_gets_probability_one() {
        let (fast, quad) = both_solvers(&[42], &[3.0], 9.0);
        assert_eq!(fast.probabilities, vec![1.0]);
        assert_eq!(quad.probabilities, vec![1.0]);
    }

    #[test]
    fn extreme_heterogeneity_remains_stable_numerically() {
        let queues = [1000u64, 0, 0];
        let rates = [1000.0, 0.001, 0.001];
        let a = 50.0;
        let iwl = compute_iwl(&queues, &rates, a);
        let sol = compute_probabilities_fast(&queues, &rates, a, iwl).unwrap();
        let total: f64 = sol.probabilities.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(sol.probabilities.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // Virtually all mass must go to the fast server: the slow servers can
        // barely serve anything.
        assert!(sol.probabilities[0] > 0.9);
    }

    /// A compressible heterogeneous snapshot: two hardware generations,
    /// bounded queues — the case the class kernel exists for.
    fn bimodal_cluster(n: usize) -> (Vec<u64>, Vec<f64>) {
        let queues: Vec<u64> = (0..n).map(|s| ((s * 7 + 3) % 11) as u64).collect();
        let rates: Vec<f64> = (0..n).map(|s| if s % 3 == 0 { 4.0 } else { 1.0 }).collect();
        (queues, rates)
    }

    #[test]
    fn compressed_kernel_samples_the_dense_distribution() {
        use rand::rngs::StdRng;
        let (queues, rates) = bimodal_cluster(60);
        let a = 24.0;
        let mut cache = scd_model::RoundCache::new();
        cache.begin_round(&queues, &rates);
        // The dense reference distribution of the same round.
        let mut dense = Vec::new();
        solve_round_cached(
            &queues,
            &rates,
            &cache,
            a,
            SolverKind::Fast,
            false,
            &mut dense,
        )
        .unwrap();
        // Draw a large sample through the compressed kernel (memo build on
        // the first call, memo hits afterwards — both paths draw).
        let mut weights = Vec::new();
        let mut sampler = AliasSampler::default();
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let trials = 200_000usize;
        let iwl = scd_dispatch_compressed(
            &queues,
            &rates,
            &cache,
            a,
            SolverKind::Fast,
            trials,
            &mut weights,
            &mut sampler,
            &mut out,
            &mut rng,
        )
        .unwrap()
        .expect("bimodal snapshot must be viable for compression");
        assert!((iwl - compute_iwl(&queues, &rates, a)).abs() < 1e-9);
        assert_eq!(out.len(), trials);
        let mut counts = vec![0u64; queues.len()];
        for s in &out {
            counts[s.index()] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - dense[s]).abs() < 0.01,
                "server {s}: empirical {freq}, dense {}",
                dense[s]
            );
        }
        // Equal-probability servers (same class) must agree exactly in the
        // underlying distribution: spot-check two same-class members.
        let same: Vec<usize> = (0..queues.len())
            .filter(|&s| queues[s] == queues[0] && rates[s] == rates[0])
            .collect();
        for &s in &same {
            assert_eq!(dense[s].to_bits(), dense[same[0]].to_bits());
        }
    }

    #[test]
    fn compressed_kernel_memo_hits_replay_the_same_table() {
        use rand::rngs::StdRng;
        let (queues, rates) = bimodal_cluster(40);
        let a = 12.0;
        let mut cache = scd_model::RoundCache::new();
        cache.begin_round(&queues, &rates);
        let mut weights = Vec::new();
        let mut sampler = AliasSampler::default();
        // First call builds the class table into the memo; a second call
        // with an identical RNG stream must replay identical destinations
        // through the memoized entry.
        let mut first = Vec::new();
        scd_dispatch_compressed(
            &queues,
            &rates,
            &cache,
            a,
            SolverKind::Fast,
            500,
            &mut weights,
            &mut sampler,
            &mut first,
            &mut StdRng::seed_from_u64(9),
        )
        .unwrap()
        .unwrap();
        let (hits_before, _) = cache.solver_memo_stats();
        let mut second = Vec::new();
        scd_dispatch_compressed(
            &queues,
            &rates,
            &cache,
            a,
            SolverKind::Fast,
            500,
            &mut weights,
            &mut sampler,
            &mut second,
            &mut StdRng::seed_from_u64(9),
        )
        .unwrap()
        .unwrap();
        let (hits_after, _) = cache.solver_memo_stats();
        assert_eq!(first, second);
        assert_eq!(
            hits_after,
            hits_before + 1,
            "second call must be a memo hit"
        );
    }

    #[test]
    fn compressed_kernel_declines_unviable_and_quadratic_rounds() {
        use rand::rngs::StdRng;
        // All-distinct rates with deep queues blow the cell budget.
        let n = 64usize;
        let queues: Vec<u64> = (0..n).map(|s| s as u64 * 9).collect();
        let rates: Vec<f64> = (0..n).map(|s| 1.0 + s as f64 * 0.01).collect();
        let mut cache = scd_model::RoundCache::new();
        cache.begin_round(&queues, &rates);
        let mut weights = Vec::new();
        let mut sampler = AliasSampler::default();
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        let unviable = scd_dispatch_compressed(
            &queues,
            &rates,
            &cache,
            8.0,
            SolverKind::Fast,
            10,
            &mut weights,
            &mut sampler,
            &mut out,
            &mut rng,
        )
        .unwrap();
        assert!(unviable.is_none());
        assert!(out.is_empty());
        // The quadratic baseline measures the dense algorithm; the class
        // kernel must stand aside even on a compressible snapshot.
        let (q2, r2) = bimodal_cluster(30);
        cache.begin_round(&q2, &r2);
        let quad = scd_dispatch_compressed(
            &q2,
            &r2,
            &cache,
            8.0,
            SolverKind::Quadratic,
            10,
            &mut weights,
            &mut sampler,
            &mut out,
            &mut rng,
        )
        .unwrap();
        assert!(quad.is_none());
        assert!(out.is_empty());
    }

    #[test]
    fn compressed_single_job_spreads_uniformly_over_min_key_ties() {
        use rand::rngs::StdRng;
        // Four idle µ=2 servers share the minimal key; everyone else is
        // excluded by the single-job closed form.
        let queues = [0u64, 3, 0, 1, 0, 3, 0, 1];
        let rates = [2.0, 2.0, 2.0, 1.0, 2.0, 2.0, 2.0, 1.0];
        let mut cache = scd_model::RoundCache::new();
        cache.begin_round(&queues, &rates);
        let mut weights = Vec::new();
        let mut sampler = AliasSampler::default();
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(77);
        let trials = 40_000usize;
        scd_dispatch_compressed(
            &queues,
            &rates,
            &cache,
            1.0,
            SolverKind::Fast,
            trials,
            &mut weights,
            &mut sampler,
            &mut out,
            &mut rng,
        )
        .unwrap()
        .unwrap();
        let winners = [0usize, 2, 4, 6];
        let mut counts = vec![0u64; queues.len()];
        for s in &out {
            counts[s.index()] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            if winners.contains(&s) {
                assert!((freq - 0.25).abs() < 0.01, "winner {s} drew {freq}");
            } else {
                assert_eq!(c, 0, "non-minimal server {s} must never be drawn");
            }
        }
    }

    #[test]
    fn grouped_trimming_matches_the_dense_fixpoints() {
        use scd_model::ClassPartition;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x6E0);
        let mut part = ClassPartition::new();
        for case in 0..60 {
            let n = rng.gen_range(2..80);
            let rates: Vec<f64> = (0..n)
                .map(|_| [1.0, 2.0, 4.0][rng.gen_range(0..3)])
                .collect();
            let queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..9)).collect();
            let arrivals = rng.gen_range(1.5..40.0);
            assert!(part.build(&queues, &rates), "case {case} must compress");
            let dense_iwl = compute_iwl(&queues, &rates, arrivals);
            let grouped_iwl =
                crate::iwl::iwl_by_trimming_grouped(part.cq(), part.cmu(), part.loads(), arrivals);
            assert!(
                (dense_iwl - grouped_iwl).abs() < 1e-9 * (1.0 + dense_iwl.abs()),
                "case {case}: dense IWL {dense_iwl} vs grouped {grouped_iwl}"
            );
            let keys: Vec<f64> = queues
                .iter()
                .zip(&rates)
                .map(|(&q, &mu)| (2.0 * q as f64 + 1.0) / mu)
                .collect();
            let dense_lambda = lambda0_by_trimming(&rates, &keys, arrivals, dense_iwl);
            let grouped_lambda =
                lambda0_by_trimming_grouped(part.cmu(), part.keys(), arrivals, grouped_iwl);
            assert!(
                (dense_lambda - grouped_lambda).abs() < 1e-9 * (1.0 + dense_lambda.abs()),
                "case {case}: dense Λ0 {dense_lambda} vs grouped {grouped_lambda}"
            );
        }
    }
}
