//! The SCD algorithm — the primary contribution of *"Stochastic Coordination
//! in Heterogeneous Load Balancing Systems"* (Goren, Vargaftik, Moses,
//! PODC 2021).
//!
//! The crate is organised exactly along the paper's Sections 3–5:
//!
//! * [`iwl`] — the *ideally balanced assignment* and the *ideal workload*
//!   (Eq. 1–2) computed by Algorithm 3 in `O(n log n)` (or `O(n)` given a
//!   pre-sorted order).
//! * [`solver`] — the stochastic-coordination quadratic program (Eq. 10) and
//!   its two solvers: Algorithm 1 (`O(n²)`) and Algorithm 4
//!   (`O(n log n)` / `O(n)` given the order), built on the KKT analysis and
//!   Lemmas 1–2.
//! * [`qp`] — reference machinery used to validate the fast solvers: the raw
//!   objective function, an exhaustive `2ⁿ` subset search and a KKT-condition
//!   checker.
//! * [`estimator`] — the arrival-estimation rule `a_est = m · a(d)` (Eq. 18)
//!   and alternatives used in ablations.
//! * [`policy`] — [`policy::ScdPolicy`], the complete dispatching procedure
//!   (Algorithm 2) packaged as a [`scd_model::DispatchPolicy`].
//! * [`stability`] — runtime checks of the Lemma 3 invariant used by the
//!   strong-stability analysis (Appendix D) and Lyapunov-drift helpers used
//!   by the stability integration tests.
//! * [`index`] — infrastructure shared with the baseline policies: the
//!   [`TournamentTree`] indexed queue view that turns the `O(n)`-per-job
//!   argmin scan of JSQ/SED-style dispatching into an `O(log n)` incremental
//!   query (see `ARCHITECTURE.md`, "Indexed queue views").
//!
//! # Quickstart
//!
//! ```
//! use scd_core::iwl::compute_iwl;
//! use scd_core::solver::{compute_probabilities, SolverKind};
//!
//! // Figure 1 of the paper: rates [5,2,1,1], queues [2,1,3,1], 7 arrivals.
//! let queues = [2u64, 1, 3, 1];
//! let rates = [5.0, 2.0, 1.0, 1.0];
//! let iwl = compute_iwl(&queues, &rates, 7.0);
//! assert!((iwl - 1.375).abs() < 1e-12);
//!
//! // The dispatching distribution a dispatcher would use when it estimates
//! // 7 total arrivals in the round.
//! let p = compute_probabilities(&queues, &rates, 7.0, iwl, SolverKind::Fast).unwrap();
//! assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimator;
pub mod index;
pub mod iwl;
pub mod policy;
pub mod qp;
pub mod solver;
pub mod stability;

pub use estimator::ArrivalEstimator;
pub use index::{scan_argmin, TournamentTree};
pub use iwl::{compute_iwl, ideal_assignment, LoadOrder};
pub use policy::{ScdFactory, ScdPolicy};
pub use solver::{
    compute_probabilities, solve_round_cached, solve_round_into, ScdScratch, ScdSolution,
    SolverKind,
};
