//! The complete SCD dispatching procedure (Algorithm 2) packaged as a
//! [`DispatchPolicy`].
//!
//! Every round, each dispatcher independently:
//!
//! 1. observes the queue lengths `q_s(t)`;
//! 2. estimates the total arrivals `a_est` from its own batch (Eq. 18);
//! 3. computes the ideal workload (Algorithm 3);
//! 4. computes the optimal dispatching probabilities (Algorithm 1 or 4);
//! 5. draws an i.i.d. destination from `P` for every job in its batch.
//!
//! The struct is allocation-free in steady state: the probability vector and
//! the alias table are recomputed each round (they depend on the fresh queue
//! state) but into buffers that persist across rounds, and the solver runs
//! sort-free trimming passes over cached load/key vectors. No *decision*
//! state is carried across rounds — SCD stays memoryless, which is what
//! makes it robust to dispatcher churn.

use crate::estimator::ArrivalEstimator;
use crate::solver::{
    scd_dispatch_cached, scd_dispatch_compressed, solve_round_into, ScdScratch, SolverKind,
};
use rand::RngCore;
use scd_model::{
    AliasSampler, BoxedPolicy, ClusterSpec, DispatchContext, DispatchPolicy, DispatcherId,
    PolicyFactory, ServerId,
};

/// The Stochastically Coordinated Dispatching policy of the paper.
///
/// # Example
/// ```
/// use scd_core::policy::ScdPolicy;
/// use scd_model::{DispatchContext, DispatchPolicy};
/// use rand::SeedableRng;
///
/// let mut policy = ScdPolicy::new();
/// let queues = vec![9u64, 0, 0, 0, 0, 0, 0, 0, 0];
/// let rates = vec![10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// let ctx = DispatchContext::new(&queues, &rates, 1, 0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let destinations = policy.dispatch_batch(&ctx, 7, &mut rng);
/// assert_eq!(destinations.len(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct ScdPolicy {
    estimator: ArrivalEstimator,
    solver: SolverKind,
    name: String,
    /// Reusable sort/key buffers for the per-round solve.
    scratch: ScdScratch,
    /// Reusable probability vector.
    probabilities: Vec<f64>,
    /// Reusable alias table for destination sampling.
    sampler: AliasSampler,
    /// Reusable compacted queue/rate buffers for availability-masked rounds
    /// (down servers are removed before the solve; see `dispatch_into`).
    masked_queues: Vec<u64>,
    masked_rates: Vec<f64>,
    /// Reusable per-class weight buffer for the compressed dispatch kernel.
    class_weights: Vec<f64>,
    /// Prefer the class-compressed dispatch kernel
    /// ([`scd_dispatch_compressed`]) on engine rounds whose snapshot is
    /// viable for compression, falling back to the dense kernel otherwise.
    /// Samples the same per-round distribution through a different RNG
    /// consumption pattern — see [`ScdPolicy::classic_sampler`].
    compressed: bool,
    /// Warm-start the solver's trimming iterations from the previous
    /// accepted solve (verified, bit-identical — see
    /// [`solve_round_cached`]). False only for the cold-solve reference
    /// configuration ([`ScdPolicy::cold_solve`], the bench baseline).
    warm_start: bool,
}

impl ScdPolicy {
    /// SCD with the paper's defaults: estimator `a_est = m·a(d)` and the
    /// `O(n log n)` solver (Algorithm 4).
    pub fn new() -> Self {
        Self::with_options(ArrivalEstimator::ScaledByDispatchers, SolverKind::Fast)
    }

    /// SCD with an explicit estimator and solver choice.
    pub fn with_options(estimator: ArrivalEstimator, solver: SolverKind) -> Self {
        let name = match solver {
            SolverKind::Fast => "SCD".to_string(),
            SolverKind::Quadratic => "SCD(alg1)".to_string(),
        };
        ScdPolicy {
            estimator,
            solver,
            name,
            scratch: ScdScratch::default(),
            probabilities: Vec::new(),
            sampler: AliasSampler::default(),
            masked_queues: Vec::new(),
            masked_rates: Vec::new(),
            class_weights: Vec::new(),
            compressed: true,
            warm_start: true,
        }
    }

    /// Overrides the display name (used by ablation experiments that run
    /// several SCD variants side by side).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Disables solver warm starting — every round re-derives the trimming
    /// fixpoints from scratch (the PR 4 decision path). Decisions are
    /// bit-identical to the warm default for equal seeds; only the cost
    /// differs. Kept as the engine-throughput baseline and the equivalence
    /// oracle.
    pub fn cold_solve(mut self) -> Self {
        self.warm_start = false;
        self
    }

    /// Disables the class-compressed dispatch kernel: every engine round
    /// runs the dense per-server fill/normalize/alias chain of PR 8, even
    /// when the snapshot compresses. The compressed kernel samples the
    /// *same* per-round distribution (exactly — class members are
    /// interchangeable under the solver's closed form) but consumes two RNG
    /// draws per job instead of one, so the two configurations produce
    /// different sample paths for equal seeds. Kept as the engine-throughput
    /// baseline and the distribution-equivalence oracle.
    pub fn classic_sampler(mut self) -> Self {
        self.compressed = false;
        self
    }

    /// Whether the class-compressed dispatch kernel is preferred on viable
    /// engine rounds.
    pub fn compressed(&self) -> bool {
        self.compressed
    }

    /// Whether the solver warm-starts from the previous accepted solve.
    pub fn warm_start(&self) -> bool {
        self.warm_start
    }

    /// The estimator in use.
    pub fn estimator(&self) -> ArrivalEstimator {
        self.estimator
    }

    /// The solver in use.
    pub fn solver(&self) -> SolverKind {
        self.solver
    }

    /// Computes this round's dispatching distribution without sampling —
    /// exposed for tests, examples and the decision-time benchmarks.
    ///
    /// Runs the *same* solver pipeline as
    /// [`dispatch_into`](DispatchPolicy::dispatch_into) (into a temporary
    /// scratch), so the returned vector is exactly the distribution a
    /// dispatch would sample from — including any last-ulp clipping at the
    /// probable-set boundary.
    pub fn distribution(&self, ctx: &DispatchContext<'_>, batch: usize) -> Vec<f64> {
        let a_est = self.estimator.estimate(batch as u64, ctx.num_dispatchers());
        let mut scratch = ScdScratch::default();
        let mut probabilities = Vec::new();
        if let Some(avail) = ctx.active_mask() {
            // Same compact-solve-and-scatter as the masked dispatch path:
            // down servers carry zero probability.
            let queues = ctx.queue_lengths();
            let rates = ctx.rates();
            let compact_queues: Vec<u64> = avail
                .up_list()
                .iter()
                .map(|&s| queues[s as usize])
                .collect();
            let compact_rates: Vec<f64> =
                avail.up_list().iter().map(|&s| rates[s as usize]).collect();
            let mut compact = Vec::new();
            solve_round_into(
                &compact_queues,
                &compact_rates,
                a_est,
                self.solver,
                self.warm_start,
                &mut scratch,
                &mut compact,
            )
            .expect("the up subset of an engine cluster state is always valid");
            probabilities = vec![0.0; queues.len()];
            for (pos, &s) in avail.up_list().iter().enumerate() {
                probabilities[s as usize] = compact[pos];
            }
            return probabilities;
        }
        // A one-shot scratch carries no seed, so the warm flag is moot; pass
        // the configured value anyway for symmetry.
        solve_round_into(
            ctx.queue_lengths(),
            ctx.rates(),
            a_est,
            self.solver,
            self.warm_start,
            &mut scratch,
            &mut probabilities,
        )
        .expect("cluster state from the engine is always valid");
        probabilities
    }
}

impl Default for ScdPolicy {
    fn default() -> Self {
        ScdPolicy::new()
    }
}

impl DispatchPolicy for ScdPolicy {
    fn policy_name(&self) -> &str {
        &self.name
    }

    fn round_cache_demand(&self) -> scd_model::CacheDemand {
        // Loads and Corollary 1 keys come from the shared tables when the
        // engine provides them (`solve_round_cached`).
        scd_model::CacheDemand::SolverTables
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(batch);
        self.dispatch_into(ctx, batch, &mut out, rng);
        out
    }

    fn dispatch_into(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        out: &mut Vec<ServerId>,
        rng: &mut dyn RngCore,
    ) {
        if batch == 0 {
            return;
        }
        let a_est = self.estimator.estimate(batch as u64, ctx.num_dispatchers());
        if let Some(avail) = ctx.active_mask() {
            // Availability-masked round: down servers must receive zero
            // probability, which the water-filling solver expresses naturally
            // when they are simply absent. Compact the up servers' (q, µ)
            // into dense buffers, solve the reduced problem, and map sampled
            // positions back through the up list. SCD stays memoryless, so
            // the reduced problem is exactly SCD on the surviving cluster.
            let queues = ctx.queue_lengths();
            let rates = ctx.rates();
            self.masked_queues.clear();
            self.masked_rates.clear();
            for &s in avail.up_list() {
                self.masked_queues.push(queues[s as usize]);
                self.masked_rates.push(rates[s as usize]);
            }
            solve_round_into(
                &self.masked_queues,
                &self.masked_rates,
                a_est,
                self.solver,
                self.warm_start,
                &mut self.scratch,
                &mut self.probabilities,
            )
            .expect("the up subset of an engine cluster state is always valid");
            self.sampler
                .rebuild(&self.probabilities)
                .expect("solver output is a valid probability vector");
            out.extend(
                (0..batch)
                    .map(|_| ServerId::new(avail.up_list()[self.sampler.sample(rng)] as usize)),
            );
            return;
        }
        // Prefer the engine's shared per-round tables (loads, solver keys)
        // when present; both entry points are bit-identical, so direct policy
        // invocations without a cache behave exactly like engine runs.
        match ctx.cache() {
            // The one-call dispatch kernel: memoized solve + in-memo alias
            // tables + sampling (warm mode) or the plain PR 4 decision path
            // (cold mode) — bit-identical destinations either way.
            Some(cache) => {
                if self.compressed {
                    let dispatched = scd_dispatch_compressed(
                        ctx.queue_lengths(),
                        ctx.rates(),
                        cache,
                        a_est,
                        self.solver,
                        batch,
                        &mut self.class_weights,
                        &mut self.sampler,
                        out,
                        rng,
                    )
                    .expect("cluster state from the engine is always valid");
                    if dispatched.is_some() {
                        return;
                    }
                }
                scd_dispatch_cached(
                    ctx.queue_lengths(),
                    ctx.rates(),
                    cache,
                    a_est,
                    self.solver,
                    self.warm_start,
                    batch,
                    &mut self.probabilities,
                    &mut self.sampler,
                    out,
                    rng,
                )
                .expect("cluster state from the engine is always valid");
            }
            None => {
                solve_round_into(
                    ctx.queue_lengths(),
                    ctx.rates(),
                    a_est,
                    self.solver,
                    self.warm_start,
                    &mut self.scratch,
                    &mut self.probabilities,
                )
                .expect("cluster state from the engine is always valid");
                self.sampler
                    .rebuild(&self.probabilities)
                    .expect("solver output is a valid probability vector");
                out.extend((0..batch).map(|_| ServerId::new(self.sampler.sample(rng))));
            }
        }
    }
}

/// Factory that equips every dispatcher with its own [`ScdPolicy`] instance.
#[derive(Debug, Clone)]
pub struct ScdFactory {
    estimator: ArrivalEstimator,
    solver: SolverKind,
    name: String,
    warm_start: bool,
    compressed: bool,
}

impl ScdFactory {
    /// SCD with the paper's defaults.
    pub fn new() -> Self {
        Self::with_options(ArrivalEstimator::ScaledByDispatchers, SolverKind::Fast)
    }

    /// SCD with an explicit estimator and solver choice.
    pub fn with_options(estimator: ArrivalEstimator, solver: SolverKind) -> Self {
        let name = match solver {
            SolverKind::Fast => "SCD".to_string(),
            SolverKind::Quadratic => "SCD(alg1)".to_string(),
        };
        ScdFactory {
            estimator,
            solver,
            name,
            warm_start: true,
            compressed: true,
        }
    }

    /// Overrides the display name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Builds cold-solve policies (see [`ScdPolicy::cold_solve`]) — the
    /// PR 4 decision path, bit-identical to the warm default for equal
    /// seeds. Reports carry the same name so warm and cold runs of one seed
    /// compare equal.
    pub fn cold_solve(mut self) -> Self {
        self.warm_start = false;
        self
    }

    /// Builds classic-sampler policies (see [`ScdPolicy::classic_sampler`])
    /// — the dense per-server dispatch chain, kept as the throughput
    /// baseline and the sample-path reference for the compressed kernel.
    pub fn classic_sampler(mut self) -> Self {
        self.compressed = false;
        self
    }
}

impl Default for ScdFactory {
    fn default() -> Self {
        ScdFactory::new()
    }
}

impl PolicyFactory for ScdFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self, _dispatcher: DispatcherId, _spec: &ClusterSpec) -> BoxedPolicy {
        let mut policy =
            ScdPolicy::with_options(self.estimator, self.solver).with_name(self.name.clone());
        if !self.warm_start {
            policy = policy.cold_solve();
        }
        if !self.compressed {
            policy = policy.classic_sampler();
        }
        Box::new(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn figure2_cluster() -> (Vec<u64>, Vec<f64>) {
        let mut queues = vec![9u64];
        queues.extend(std::iter::repeat_n(0, 8));
        let mut rates = vec![10.0];
        rates.extend(std::iter::repeat_n(1.0, 8));
        (queues, rates)
    }

    #[test]
    fn empty_batch_dispatches_nothing() {
        let (queues, rates) = figure2_cluster();
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = ScdPolicy::new();
        assert!(policy.dispatch_batch(&ctx, 0, &mut rng).is_empty());
    }

    #[test]
    fn dispatch_produces_valid_destinations() {
        let (queues, rates) = figure2_cluster();
        let ctx = DispatchContext::new(&queues, &rates, 4, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = ScdPolicy::new();
        let out = policy.dispatch_batch(&ctx, 50, &mut rng);
        assert_eq!(out.len(), 50);
        assert!(out.iter().all(|s| s.index() < queues.len()));
    }

    #[test]
    fn empirical_distribution_matches_solver_output() {
        let (queues, rates) = figure2_cluster();
        // Single dispatcher so a_est = batch exactly.
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let policy = ScdPolicy::new();
        let expected = policy.distribution(&ctx, 7);
        let mut policy = policy;
        let mut rng = StdRng::seed_from_u64(12345);
        let mut counts = vec![0usize; queues.len()];
        let trials = 40_000;
        for _ in 0..trials {
            for s in policy.dispatch_batch(&ctx, 7, &mut rng) {
                counts[s.index()] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, trials * 7);
        for (s, &c) in counts.iter().enumerate() {
            let freq = c as f64 / total as f64;
            assert!(
                (freq - expected[s]).abs() < 0.01,
                "server {s}: empirical {freq}, expected {}",
                expected[s]
            );
        }
    }

    #[test]
    fn estimator_affects_the_distribution() {
        let (queues, rates) = figure2_cluster();
        let ctx = DispatchContext::new(&queues, &rates, 10, 0);
        let own_only = ScdPolicy::with_options(ArrivalEstimator::OwnOnly, SolverKind::Fast);
        let scaled = ScdPolicy::new();
        let p_own = own_only.distribution(&ctx, 2);
        let p_scaled = scaled.distribution(&ctx, 2);
        // With a larger estimated total, mass spreads onto more servers
        // (including the fast one that is above the IWL).
        assert!(p_scaled[0] > 0.0);
        assert!(
            p_own.iter().filter(|&&p| p > 0.0).count()
                <= p_scaled.iter().filter(|&&p| p > 0.0).count()
        );
    }

    #[test]
    fn both_solver_kinds_produce_the_same_distribution() {
        let (queues, rates) = figure2_cluster();
        let ctx = DispatchContext::new(&queues, &rates, 5, 0);
        let fast = ScdPolicy::with_options(ArrivalEstimator::ScaledByDispatchers, SolverKind::Fast);
        let quad =
            ScdPolicy::with_options(ArrivalEstimator::ScaledByDispatchers, SolverKind::Quadratic);
        let pf = fast.distribution(&ctx, 3);
        let pq = quad.distribution(&ctx, 3);
        for (a, b) in pf.iter().zip(&pq) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(fast.policy_name(), "SCD");
        assert_eq!(quad.policy_name(), "SCD(alg1)");
    }

    #[test]
    fn factory_builds_named_policies() {
        let spec = ClusterSpec::from_rates(vec![1.0, 2.0]).unwrap();
        let factory = ScdFactory::new();
        assert_eq!(factory.name(), "SCD");
        let policy = factory.build(DispatcherId::new(0), &spec);
        assert_eq!(policy.policy_name(), "SCD");

        let renamed = ScdFactory::with_options(ArrivalEstimator::OwnOnly, SolverKind::Fast)
            .with_name("SCD[own]");
        assert_eq!(renamed.name(), "SCD[own]");
        let policy = renamed.build(DispatcherId::new(1), &spec);
        assert_eq!(policy.policy_name(), "SCD[own]");
    }

    #[test]
    fn accessors_report_configuration() {
        let p = ScdPolicy::with_options(ArrivalEstimator::Constant(8.0), SolverKind::Quadratic);
        assert_eq!(p.estimator(), ArrivalEstimator::Constant(8.0));
        assert_eq!(p.solver(), SolverKind::Quadratic);
        assert!(p.compressed());
        assert!(!p.classic_sampler().compressed());
    }

    #[test]
    fn compressed_engine_dispatch_matches_the_distribution() {
        // A compressible cluster behind a shared round cache — the engine
        // configuration the class kernel targets. The empirical destination
        // frequencies must match the dense solver's distribution, which is
        // what `distribution()` reports regardless of sampler choice.
        let queues: Vec<u64> = (0..48).map(|s| ((s * 5 + 1) % 7) as u64).collect();
        let rates: Vec<f64> = (0..48)
            .map(|s| if s % 4 == 0 { 3.0 } else { 1.0 })
            .collect();
        let mut cache = scd_model::RoundCache::new();
        cache.begin_round(&queues, &rates);
        let ctx = DispatchContext::with_cache(&queues, &rates, 1, 0, &cache);
        let mut policy = ScdPolicy::new();
        assert!(policy.compressed());
        let expected = policy.distribution(&ctx, 9);
        let mut rng = StdRng::seed_from_u64(314);
        let mut counts = vec![0usize; queues.len()];
        let trials = 30_000;
        for _ in 0..trials {
            for s in policy.dispatch_batch(&ctx, 9, &mut rng) {
                counts[s.index()] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        for (s, &c) in counts.iter().enumerate() {
            let freq = c as f64 / total as f64;
            assert!(
                (freq - expected[s]).abs() < 0.01,
                "server {s}: empirical {freq}, expected {}",
                expected[s]
            );
        }
    }
}
