//! Estimating the round's total arrivals (Section 5.1 of the paper).
//!
//! The optimal probabilities depend only on the *total* number of arrivals
//! `a = Σ_d a(d)` in the round, which no individual dispatcher knows. The
//! paper's rule (Eq. 18) has every dispatcher assume the others received the
//! same number of jobs it did: `a_est,d = m · a(d)`. The stability proof
//! (Appendix D) only requires `1 ≤ a_est,d < ∞`, so alternative estimators
//! are legitimate; we keep a few for ablation experiments.

use serde::{Deserialize, Serialize};

/// A rule for estimating the total number of arrivals in the current round
/// from a dispatcher's own arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ArrivalEstimator {
    /// The paper's estimator (Eq. 18): `a_est = m · a(d)`.
    #[default]
    ScaledByDispatchers,
    /// Use only the dispatcher's own arrivals: `a_est = a(d)`. With this
    /// estimator SCD degenerates towards SED-like behaviour (it behaves as if
    /// it were the only dispatcher).
    OwnOnly,
    /// Scale the own arrivals by an arbitrary positive factor:
    /// `a_est = factor · a(d)`.
    ScaledBy(f64),
    /// A fixed estimate, independent of the actual arrivals. As the constant
    /// grows, SCD approaches weighted-random (Section 5.2).
    Constant(f64),
}

impl ArrivalEstimator {
    /// Produces the estimate `a_est` for a round in which this dispatcher
    /// received `own_arrivals` jobs and the system has `num_dispatchers`
    /// dispatchers.
    ///
    /// The result is always clamped to at least `max(own_arrivals, 1)`: the
    /// dispatcher knows it must place at least its own jobs, and the solver
    /// requires `a_est ≥ 1`.
    pub fn estimate(&self, own_arrivals: u64, num_dispatchers: usize) -> f64 {
        let own = own_arrivals as f64;
        let raw = match self {
            ArrivalEstimator::ScaledByDispatchers => own * num_dispatchers as f64,
            ArrivalEstimator::OwnOnly => own,
            ArrivalEstimator::ScaledBy(factor) => own * factor,
            ArrivalEstimator::Constant(value) => *value,
        };
        raw.max(own).max(1.0)
    }

    /// A short, stable label used in experiment output.
    pub fn label(&self) -> String {
        match self {
            ArrivalEstimator::ScaledByDispatchers => "m*a(d)".to_string(),
            ArrivalEstimator::OwnOnly => "a(d)".to_string(),
            ArrivalEstimator::ScaledBy(f) => format!("{f}*a(d)"),
            ArrivalEstimator::Constant(c) => format!("const({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_estimator_scales_by_dispatcher_count() {
        let e = ArrivalEstimator::ScaledByDispatchers;
        assert_eq!(e.estimate(3, 10), 30.0);
        assert_eq!(e.estimate(0, 10), 1.0, "clamped to 1 when nothing arrived");
        assert_eq!(e.estimate(1, 1), 1.0);
    }

    #[test]
    fn own_only_matches_own_arrivals() {
        let e = ArrivalEstimator::OwnOnly;
        assert_eq!(e.estimate(7, 99), 7.0);
        assert_eq!(e.estimate(0, 99), 1.0);
    }

    #[test]
    fn scaled_by_factor() {
        let e = ArrivalEstimator::ScaledBy(2.5);
        assert_eq!(e.estimate(4, 3), 10.0);
        // Never below the dispatcher's own batch.
        let shrink = ArrivalEstimator::ScaledBy(0.1);
        assert_eq!(shrink.estimate(4, 3), 4.0);
    }

    #[test]
    fn constant_is_clamped_to_own_batch() {
        let e = ArrivalEstimator::Constant(100.0);
        assert_eq!(e.estimate(5, 2), 100.0);
        let tiny = ArrivalEstimator::Constant(0.5);
        assert_eq!(tiny.estimate(5, 2), 5.0);
        assert_eq!(tiny.estimate(0, 2), 1.0);
    }

    #[test]
    fn default_is_the_paper_rule() {
        assert_eq!(
            ArrivalEstimator::default(),
            ArrivalEstimator::ScaledByDispatchers
        );
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            ArrivalEstimator::ScaledByDispatchers.label(),
            ArrivalEstimator::OwnOnly.label(),
            ArrivalEstimator::ScaledBy(3.0).label(),
            ArrivalEstimator::Constant(9.0).label(),
        ];
        for (i, a) in labels.iter().enumerate() {
            for (j, b) in labels.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
    }

    #[test]
    fn average_of_estimates_equals_total_arrivals() {
        // Eq. 19: (1/m) Σ_d m·a(d) = Σ_d a(d).
        let arrivals = [4u64, 0, 7, 2, 1];
        let m = arrivals.len();
        let estimator = ArrivalEstimator::ScaledByDispatchers;
        let mean_estimate: f64 = arrivals
            .iter()
            .map(|&a| estimator.estimate(a, m))
            .sum::<f64>()
            / m as f64;
        // The clamp to 1 for the zero-arrival dispatcher adds a small bias;
        // exclude it the way the paper implicitly does (a dispatcher with no
        // arrivals never dispatches and its estimate is irrelevant).
        let mean_estimate_active: f64 = arrivals
            .iter()
            .filter(|&&a| a > 0)
            .map(|&a| estimator.estimate(a, m))
            .sum::<f64>()
            / m as f64;
        let total: f64 = arrivals.iter().map(|&a| a as f64).sum();
        assert!(mean_estimate >= mean_estimate_active);
        assert!((mean_estimate_active - total).abs() < 1e-12);
    }
}
