//! Runtime checks backing the strong-stability analysis (Appendix D).
//!
//! The paper proves that SCD is strongly stable for any admissible arrival
//! rate. Two ingredients of the proof are directly checkable at runtime and
//! are used by the integration tests:
//!
//! * **Lemma 3** — the monotonicity relation between the optimal
//!   probabilities and the server loads: if `p_s/µ_s ≤ p_s'/µ_s'` (both
//!   positive) then `(q_s + a)/µ_s ≥ q_s'/µ_s'`. [`check_lemma3`] verifies it
//!   for a concrete solution.
//! * **Lyapunov drift** — the weighted backlog `Σ_s q_s²/µ_s` used in the
//!   drift argument; [`weighted_backlog`] computes it so long-run simulations
//!   can assert that it stays bounded under admissible load.

use std::error::Error;
use std::fmt;

/// Violation of the Lemma 3 invariant, reported by [`check_lemma3`].
#[derive(Debug, Clone, PartialEq)]
pub struct Lemma3Violation {
    /// Index of the server `s` with the smaller probability-to-rate ratio.
    pub smaller_ratio_server: usize,
    /// Index of the server `s'` with the larger probability-to-rate ratio.
    pub larger_ratio_server: usize,
    /// Left-hand side `(q_s + a)/µ_s` that should dominate.
    pub lhs: f64,
    /// Right-hand side `q_s'/µ_s'`.
    pub rhs: f64,
}

impl fmt::Display for Lemma3Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Lemma 3 violated for servers {} and {}: ({:.6} < {:.6})",
            self.smaller_ratio_server, self.larger_ratio_server, self.lhs, self.rhs
        )
    }
}

impl Error for Lemma3Violation {}

/// Checks the Lemma 3 invariant for a computed probability vector.
///
/// For every pair of servers `s, s'` with `p_s, p_s' > 0`:
/// if `p_s/µ_s ≤ p_s'/µ_s'` then `(q_s + a)/µ_s ≥ q_s'/µ_s'`.
///
/// # Errors
/// Returns the first violating pair.
///
/// # Panics
/// Panics if the slice lengths disagree.
pub fn check_lemma3(
    probs: &[f64],
    queues: &[u64],
    rates: &[f64],
    arrivals: f64,
) -> Result<(), Lemma3Violation> {
    assert_eq!(probs.len(), queues.len());
    assert_eq!(probs.len(), rates.len());
    let n = probs.len();
    let support: Vec<usize> = (0..n).filter(|&s| probs[s] > 0.0).collect();
    const TOL: f64 = 1e-9;
    for &s in &support {
        for &t in &support {
            if s == t {
                continue;
            }
            let ratio_s = probs[s] / rates[s];
            let ratio_t = probs[t] / rates[t];
            if ratio_s <= ratio_t + TOL {
                let lhs = (queues[s] as f64 + arrivals) / rates[s];
                let rhs = queues[t] as f64 / rates[t];
                if lhs + TOL < rhs {
                    return Err(Lemma3Violation {
                        smaller_ratio_server: s,
                        larger_ratio_server: t,
                        lhs,
                        rhs,
                    });
                }
            }
        }
    }
    Ok(())
}

/// The weighted backlog `Σ_s q_s² / µ_s` — the Lyapunov function used in the
/// strong-stability proof (Eq. 23–25).
///
/// # Panics
/// Panics if the slice lengths disagree.
pub fn weighted_backlog(queues: &[u64], rates: &[f64]) -> f64 {
    assert_eq!(queues.len(), rates.len());
    queues
        .iter()
        .zip(rates)
        .map(|(&q, &mu)| (q as f64) * (q as f64) / mu)
        .sum()
}

/// The offered load `ρ = Σ_d λ_d / Σ_s µ_s` of a system configuration; a
/// system is admissible when `ρ < 1`.
///
/// # Panics
/// Panics if `rates` is empty or sums to zero.
pub fn offered_load(arrival_rates: &[f64], rates: &[f64]) -> f64 {
    let capacity: f64 = rates.iter().sum();
    assert!(capacity > 0.0, "total service capacity must be positive");
    arrival_rates.iter().sum::<f64>() / capacity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iwl::compute_iwl;
    use crate::solver::{compute_probabilities_fast, compute_probabilities_quadratic};
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn optimal_solutions_satisfy_lemma3() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..200 {
            let n = rng.gen_range(2..30);
            let queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..25)).collect();
            let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..12.0)).collect();
            let a = rng.gen_range(2..80) as f64;
            let iwl = compute_iwl(&queues, &rates, a);
            let fast = compute_probabilities_fast(&queues, &rates, a, iwl).unwrap();
            check_lemma3(&fast.probabilities, &queues, &rates, a)
                .expect("fast solver output violates Lemma 3");
            let quad = compute_probabilities_quadratic(&queues, &rates, a, iwl).unwrap();
            check_lemma3(&quad.probabilities, &queues, &rates, a)
                .expect("quadratic solver output violates Lemma 3");
        }
    }

    #[test]
    fn detects_a_violation_in_a_bad_distribution() {
        // Two servers with equal rates. Putting most probability on the far
        // more loaded server while the empty one also has positive mass
        // violates the invariant when arrivals are small.
        let queues = [100u64, 0];
        let rates = [1.0, 1.0];
        let probs = [0.9, 0.1];
        // ratio_1 = 0.1 <= ratio_0 = 0.9, so we need (q_1 + a)/µ_1 >= q_0/µ_0,
        // i.e. 0 + 2 >= 100 — false.
        let err = check_lemma3(&probs, &queues, &rates, 2.0).unwrap_err();
        assert_eq!(err.smaller_ratio_server, 1);
        assert_eq!(err.larger_ratio_server, 0);
        assert!(err.to_string().contains("Lemma 3"));
    }

    #[test]
    fn weighted_backlog_formula() {
        assert_eq!(weighted_backlog(&[2, 3], &[2.0, 1.0]), 2.0 + 9.0);
        assert_eq!(weighted_backlog(&[0, 0], &[2.0, 1.0]), 0.0);
    }

    #[test]
    fn offered_load_is_ratio_of_totals() {
        let rho = offered_load(&[2.0, 3.0], &[4.0, 4.0, 2.0]);
        assert!((rho - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn offered_load_requires_capacity() {
        offered_load(&[1.0], &[]);
    }
}
