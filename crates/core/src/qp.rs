//! Reference machinery for the stochastic-coordination quadratic program.
//!
//! Nothing in this module is used on the dispatching hot path; it exists so
//! that the `O(n log n)` production solver can be validated against
//! first-principles implementations:
//!
//! * [`objective`] — the raw objective `f(P)` of Eq. 10.
//! * [`expected_error`] — the full expected error of Eq. 8 (objective plus
//!   the constant terms dropped in the derivation), useful for sanity checks
//!   against Monte-Carlo estimates.
//! * [`exhaustive_solution`] — the brute-force active-set search over all
//!   `2ⁿ − 1` candidate probable sets described (and rejected as infeasible
//!   for production) in Section 4.1.
//! * [`check_kkt`] — verifies the Karush-Kuhn-Tucker conditions (Eq. 12) for
//!   a candidate solution.

use std::error::Error;
use std::fmt;

/// The objective function `f(P)` of Eq. 10.
///
/// # Panics
/// Panics if the slice lengths disagree.
pub fn objective(probs: &[f64], queues: &[u64], rates: &[f64], arrivals: f64, iwl: f64) -> f64 {
    assert_eq!(probs.len(), queues.len());
    assert_eq!(probs.len(), rates.len());
    let a = arrivals;
    probs
        .iter()
        .zip(queues)
        .zip(rates)
        .map(|((&p, &q), &mu)| {
            (a - 1.0) * p * p / mu + (2.0 * (q as f64 - mu * iwl) + 1.0) / mu * p
        })
        .sum()
}

/// The full expected error `E[error]` of Eq. 5/8 (including the constant
/// terms that do not depend on `P`), assuming `ā_s ~ Binomial(a, p_s)`.
///
/// Used by tests that compare against Monte-Carlo simulation of the
/// dispatching step.
///
/// # Panics
/// Panics if the slice lengths disagree.
pub fn expected_error(
    probs: &[f64],
    queues: &[u64],
    rates: &[f64],
    arrivals: f64,
    iwl: f64,
) -> f64 {
    assert_eq!(probs.len(), queues.len());
    assert_eq!(probs.len(), rates.len());
    let a = arrivals;
    probs
        .iter()
        .zip(queues)
        .zip(rates)
        .map(|((&p, &q), &mu)| {
            let e_a = a * p;
            let e_a2 = a * p * (1.0 - p) + a * a * p * p;
            let c = q as f64 - mu * iwl;
            (e_a2 + 2.0 * e_a * c + c * c) / mu
        })
        .sum()
}

/// Violation report produced by [`check_kkt`].
#[derive(Debug, Clone, PartialEq)]
pub struct KktViolation {
    /// Human-readable description of the violated condition.
    pub condition: String,
    /// Magnitude of the violation.
    pub magnitude: f64,
}

impl fmt::Display for KktViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KKT violation ({}): magnitude {}",
            self.condition, self.magnitude
        )
    }
}

impl Error for KktViolation {}

/// Checks the KKT conditions (Eq. 12) for the problem of Eq. 10.
///
/// For the strictly convex case (`a > 1`) the KKT conditions are necessary
/// and sufficient for optimality, so this function is a *certificate checker*
/// for any candidate solution:
///
/// * primal feasibility: `p_s ≥ 0`, `Σ p_s = 1`;
/// * stationarity on the support: the gradient component
///   `2(a−1)p_s/µ_s + (2(q_s − µ_s·iwl)+1)/µ_s` is the same constant `−Λ₀`
///   for every `s` with `p_s > 0`;
/// * dual feasibility off the support: for `p_s = 0` the gradient component
///   must be at least that constant.
///
/// # Errors
/// Returns the first violated condition with its magnitude.
///
/// # Panics
/// Panics if the slice lengths disagree or `arrivals ≤ 1`.
pub fn check_kkt(
    probs: &[f64],
    queues: &[u64],
    rates: &[f64],
    arrivals: f64,
    iwl: f64,
    tolerance: f64,
) -> Result<(), KktViolation> {
    assert_eq!(probs.len(), queues.len());
    assert_eq!(probs.len(), rates.len());
    assert!(arrivals > 1.0, "KKT analysis applies to the a > 1 case");
    let a = arrivals;

    // Primal feasibility.
    let total: f64 = probs.iter().sum();
    if (total - 1.0).abs() > tolerance {
        return Err(KktViolation {
            condition: "sum of probabilities equals one".into(),
            magnitude: (total - 1.0).abs(),
        });
    }
    if let Some((i, &p)) = probs.iter().enumerate().find(|(_, &p)| p < -tolerance) {
        return Err(KktViolation {
            condition: format!("probability {i} is non-negative"),
            magnitude: -p,
        });
    }

    // Gradient of the objective w.r.t. p_s.
    let gradient = |s: usize| -> f64 {
        2.0 * (a - 1.0) * probs[s] / rates[s]
            + (2.0 * (queues[s] as f64 - rates[s] * iwl) + 1.0) / rates[s]
    };

    // Stationarity: the gradient must be constant over the support.
    let support: Vec<usize> = (0..probs.len()).filter(|&s| probs[s] > tolerance).collect();
    if support.is_empty() {
        return Err(KktViolation {
            condition: "support is non-empty".into(),
            magnitude: 1.0,
        });
    }
    let reference = gradient(support[0]);
    // The gradient scale grows with queue lengths and 1/µ; use a relative
    // tolerance so large instances are not rejected for harmless round-off.
    let scale = 1.0 + reference.abs();
    for &s in &support[1..] {
        let g = gradient(s);
        if (g - reference).abs() > tolerance * scale {
            return Err(KktViolation {
                condition: format!("stationarity on support server {s}"),
                magnitude: (g - reference).abs(),
            });
        }
    }

    // Dual feasibility: off-support gradients must not be smaller.
    for (s, &p_s) in probs.iter().enumerate() {
        if p_s <= tolerance {
            let g = gradient(s);
            if g < reference - tolerance * scale {
                return Err(KktViolation {
                    condition: format!("dual feasibility for zero-probability server {s}"),
                    magnitude: reference - g,
                });
            }
        }
    }
    Ok(())
}

/// Brute-force reference solver: tries every non-empty subset of servers as
/// the probable set, computes the closed-form solution (Eq. 14–16), keeps the
/// feasible candidate with the smallest objective.
///
/// Exponential in `n`; intended for tests with `n ≤ 16`.
///
/// # Panics
/// Panics if `n > 20` (the search would take far too long), if the slice
/// lengths disagree, or if `arrivals ≤ 1`.
pub fn exhaustive_solution(queues: &[u64], rates: &[f64], arrivals: f64, iwl: f64) -> Vec<f64> {
    assert_eq!(queues.len(), rates.len());
    let n = queues.len();
    assert!(n <= 20, "exhaustive search is limited to n <= 20 (got {n})");
    assert!(
        arrivals > 1.0,
        "exhaustive search applies to the a > 1 case"
    );
    let a = arrivals;

    let mut best_val = f64::INFINITY;
    let mut best: Option<Vec<f64>> = None;

    for mask in 1u32..(1u32 << n) {
        let members: Vec<usize> = (0..n).filter(|&s| mask & (1 << s) != 0).collect();
        // Λ0 per Eq. 16.
        let mut num = 0.0;
        let mut den = 0.0;
        for &s in &members {
            num += 2.0 * (rates[s] * iwl - queues[s] as f64) - 1.0;
            den += rates[s];
        }
        num -= 2.0 * (a - 1.0);
        let lambda0 = num / den;

        let mut probs = vec![0.0; n];
        let mut feasible = true;
        for &s in &members {
            let p = (-2.0 * (queues[s] as f64 - rates[s] * iwl) - 1.0 - rates[s] * lambda0)
                / (2.0 * (a - 1.0));
            if p < -1e-9 {
                feasible = false;
                break;
            }
            probs[s] = p.max(0.0);
        }
        if !feasible {
            continue;
        }
        let val = objective(&probs, queues, rates, a, iwl);
        if val < best_val {
            best_val = val;
            best = Some(probs);
        }
    }

    let mut probs = best.expect("at least one subset is feasible");
    let total: f64 = probs.iter().sum();
    if total > 0.0 {
        for p in probs.iter_mut() {
            *p /= total;
        }
    }
    probs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iwl::compute_iwl;

    #[test]
    fn objective_matches_hand_computation() {
        // Two servers, a = 3, iwl = 1: f(P) = 2(p0²/2 + p1²) + [(2(1−2)+1)/2]p0 + [(2(0−1)+1)/1]p1
        let probs = [0.25, 0.75];
        let queues = [1u64, 0];
        let rates = [2.0, 1.0];
        let val = objective(&probs, &queues, &rates, 3.0, 1.0);
        let expected = 2.0 * (0.25f64.powi(2) / 2.0 + 0.75f64.powi(2)) + (-0.5) * 0.25 + -0.75;
        assert!((val - expected).abs() < 1e-12);
    }

    #[test]
    fn expected_error_dominates_objective_by_constants() {
        // E[error] = a·f(P)·? — not exactly; instead verify that optimizing
        // f also optimizes E[error]: for two candidate distributions the
        // ordering is identical.
        let queues = [3u64, 0, 1];
        let rates = [2.0, 1.0, 1.0];
        let a = 5.0;
        let iwl = compute_iwl(&queues, &rates, a);
        let p1 = [0.2, 0.5, 0.3];
        let p2 = [0.6, 0.2, 0.2];
        let f1 = objective(&p1, &queues, &rates, a, iwl);
        let f2 = objective(&p2, &queues, &rates, a, iwl);
        let e1 = expected_error(&p1, &queues, &rates, a, iwl);
        let e2 = expected_error(&p2, &queues, &rates, a, iwl);
        assert_eq!(
            f1 < f2,
            e1 < e2,
            "objective and expected error must rank identically"
        );
        // And the difference of expected errors equals a times the difference
        // of objectives (the dropped terms are constant in P).
        assert!(((e1 - e2) - a * (f1 - f2)).abs() < 1e-9);
    }

    #[test]
    fn kkt_accepts_optimal_and_rejects_suboptimal() {
        let queues = [9u64, 0, 0, 0, 0, 0, 0, 0, 0];
        let rates = [10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let a = 7.0;
        let iwl = compute_iwl(&queues, &rates, a);
        // Analytical optimum from Figure 2.
        let mut optimal = vec![2.0 / 9.0];
        optimal.extend(std::iter::repeat_n(7.0 / 72.0, 8));
        check_kkt(&optimal, &queues, &rates, a, iwl, 1e-9).unwrap();

        // A clearly suboptimal distribution: everything to the fast server.
        let mut bad = vec![1.0];
        bad.extend(std::iter::repeat_n(0.0, 8));
        assert!(check_kkt(&bad, &queues, &rates, a, iwl, 1e-9).is_err());

        // A vector that does not sum to one.
        let mut unnormalized = optimal.clone();
        unnormalized[0] += 0.1;
        let err = check_kkt(&unnormalized, &queues, &rates, a, iwl, 1e-9).unwrap_err();
        assert!(err.condition.contains("sum"));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn exhaustive_matches_known_closed_form() {
        let queues = [9u64, 0, 0, 0, 0, 0, 0, 0, 0];
        let rates = [10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let a = 7.0;
        let iwl = compute_iwl(&queues, &rates, a);
        let sol = exhaustive_solution(&queues, &rates, a, iwl);
        assert!((sol[0] - 2.0 / 9.0).abs() < 1e-9);
        for &p_slow in &sol[1..9] {
            assert!((p_slow - 7.0 / 72.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "n <= 20")]
    fn exhaustive_refuses_large_instances() {
        let queues = vec![0u64; 21];
        let rates = vec![1.0; 21];
        exhaustive_solution(&queues, &rates, 2.0, 0.0);
    }
}
