//! The ideally balanced assignment and the ideal workload (Section 3.1,
//! Algorithm 3 of the paper).
//!
//! Given the current queue lengths `q_s`, the service rates `µ_s` and the
//! total number of incoming jobs `a`, the *ideal workload* (IWL) is the
//! max-min-fair post-assignment load level: the value of
//!
//! ```text
//!   max min_s (q_s + ā_s) / µ_s    s.t.  Σ_s ā_s = a,  ā_s ≥ 0
//! ```
//!
//! if the incoming work were infinitely divisible. The corresponding
//! *ideally balanced assignment* is `ā_s = µ_s · max(q_s/µ_s, iwl) − q_s`
//! (Eq. 2). SCD measures every realizable (integral, randomized) assignment
//! against this ideal.

/// Computes the ideal workload by sorting servers by their current load
/// `q_s / µ_s` and then water-filling the `a` units of incoming work
/// (Algorithm 3).
///
/// Runs in `O(n log n)`; use [`compute_iwl_with_order`] when the caller
/// already maintains the sorted order.
///
/// # Panics
/// Panics if `queues` and `rates` have different lengths, if `rates` is
/// empty, or if `arrivals` is negative or not finite. Rates must be strictly
/// positive (guaranteed by [`scd_model::ClusterSpec`]); a non-positive rate
/// makes the load `q/µ` meaningless and triggers a debug assertion.
///
/// # Example
/// ```
/// use scd_core::iwl::compute_iwl;
/// // Figure 1: rates [5,2,1,1], queues [2,1,3,1], 7 new jobs → IWL = 1.375.
/// let iwl = compute_iwl(&[2, 1, 3, 1], &[5.0, 2.0, 1.0, 1.0], 7.0);
/// assert!((iwl - 1.375).abs() < 1e-12);
/// ```
pub fn compute_iwl(queues: &[u64], rates: &[f64], arrivals: f64) -> f64 {
    let order = sorted_by_load(queues, rates);
    compute_iwl_with_order(queues, rates, arrivals, &order)
}

/// Returns the server indices sorted in non-decreasing order of load
/// `q_s / µ_s` — the order required by [`compute_iwl_with_order`].
///
/// The sort is stable, so equal loads keep index order: the result is the
/// unique permutation sorted by the composite key `(load, index)` — the
/// invariant [`LoadOrder`] maintains incrementally.
pub fn sorted_by_load(queues: &[u64], rates: &[f64]) -> Vec<usize> {
    let mut order = Vec::new();
    sorted_by_load_into(queues, rates, &mut order);
    order
}

/// Buffer-reusing variant of [`sorted_by_load`]: fills `order` (cleared
/// first) with the sorted indices instead of allocating a fresh vector, so
/// per-round callers pay no per-solve heap allocation.
pub fn sorted_by_load_into(queues: &[u64], rates: &[f64], order: &mut Vec<usize>) {
    assert_eq!(
        queues.len(),
        rates.len(),
        "queues and rates must have equal length"
    );
    order.clear();
    order.extend(0..queues.len());
    order.sort_by(|&a, &b| {
        let la = queues[a] as f64 / rates[a];
        let lb = queues[b] as f64 / rates[b];
        la.partial_cmp(&lb).expect("loads are finite")
    });
}

/// A persistent sorted-by-load permutation, repaired incrementally from the
/// engine's round-to-round dirty sets.
///
/// Algorithm 3-style consumers need the servers in non-decreasing load
/// order every round ([`compute_iwl_with_order`] — the water-filling scan
/// proper). Re-sorting costs
/// `O(n log n)` per round even though, between consecutive rounds, only the
/// dirty servers (dispatch targets ∪ servers with completions) moved. A
/// `LoadOrder` keeps the full permutation across rounds and repairs it by
/// **relocating only the dirty servers** (in-place binary search + a
/// subrange rotation bounded by the displacement), with the full sort as
/// the cold/fallback path —
/// [`repair`](LoadOrder::repair) degrades to
/// [`rebuild`](LoadOrder::rebuild) when the dirty set is dense enough that
/// shifting would cost more than sorting.
///
/// # Invariant and exactness
///
/// The permutation is kept sorted by the composite key `(q_s/µ_s, s)` —
/// exactly the output of the stable [`sorted_by_load`] sort. Because the
/// composite keys are distinct, every state has a *unique* valid
/// permutation, so an incrementally repaired order is **identical** (not
/// merely equivalent) to a cold re-sort, and everything derived from it
/// (e.g. the Algorithm 3 scan) is bit-identical. The loads used for
/// comparisons are cached per server and recomputed only for dirty servers,
/// with the same `q as f64 / µ` expression the cold sort uses.
///
/// # Example
/// ```
/// use scd_core::iwl::{sorted_by_load, LoadOrder};
/// let rates = [2.0, 1.0, 4.0];
/// let mut queues = [4u64, 1, 2];
/// let mut order = LoadOrder::new();
/// order.rebuild(&queues, &rates);
/// assert_eq!(order.order(), &sorted_by_load(&queues, &rates)[..]);
/// queues[0] = 0; // server 0 drained
/// order.repair(&queues, &rates, &[0]);
/// assert_eq!(order.order(), &sorted_by_load(&queues, &rates)[..]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LoadOrder {
    /// Server indices sorted by `(load, index)`.
    order: Vec<usize>,
    /// Inverse permutation: `pos[order[i]] == i`.
    pos: Vec<usize>,
    /// Cached per-server loads `q_s/µ_s` the order is sorted by.
    loads: Vec<f64>,
}

impl LoadOrder {
    /// Creates an empty order; call [`rebuild`](LoadOrder::rebuild) before
    /// reading it.
    pub fn new() -> Self {
        LoadOrder::default()
    }

    /// Number of servers the order covers.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True before the first rebuild.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The server indices in non-decreasing `(load, index)` order — directly
    /// consumable by [`compute_iwl_with_order`].
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Cold path: full stable sort, reusing all buffers (`O(n log n)`).
    pub fn rebuild(&mut self, queues: &[u64], rates: &[f64]) {
        assert_eq!(
            queues.len(),
            rates.len(),
            "queues and rates must have equal length"
        );
        let n = queues.len();
        self.loads.clear();
        self.loads
            .extend(queues.iter().zip(rates).map(|(&q, &mu)| q as f64 / mu));
        sorted_by_load_into(queues, rates, &mut self.order);
        self.pos.clear();
        self.pos.resize(n, 0);
        for (i, &s) in self.order.iter().enumerate() {
            self.pos[s] = i;
        }
    }

    /// Warm path: re-reads the load of every server in `dirty` and restores
    /// the sort invariant by rotating only the servers whose load actually
    /// changed into their new slots — `O(k·(log n + d))` for `k` dirty
    /// servers moving distance `d`, versus the full sort's `O(n log n)`.
    ///
    /// `dirty` must list every server whose queue length changed since the
    /// last `rebuild`/`repair` (the engine's dirty set satisfies this);
    /// duplicates and unchanged servers are harmless. Falls back to
    /// [`rebuild`](LoadOrder::rebuild) when the order is uninitialized, the
    /// cluster size changed, or the dirty set is dense (`k ≥ n/4` — beyond
    /// that the shifts approach the cost of a sort).
    ///
    /// # Panics
    /// Panics if `queues` and `rates` differ in length or a dirty index is
    /// out of range while the incremental path runs.
    pub fn repair(&mut self, queues: &[u64], rates: &[f64], dirty: &[u32]) {
        assert_eq!(
            queues.len(),
            rates.len(),
            "queues and rates must have equal length"
        );
        let n = queues.len();
        if self.order.len() != n || dirty.len() >= n / 4 {
            self.rebuild(queues, rates);
            return;
        }
        for &s in dirty {
            let s = s as usize;
            let load = queues[s] as f64 / rates[s];
            if load == self.loads[s] {
                continue;
            }
            // Binary-search the new slot by (load, index) *in place*: the
            // two halves around `from` are each sorted, so the unique target
            // slot (composite keys are distinct) falls out of at most two
            // partition points — no removal, no `O(n)` memmove. The
            // subrange rotation then shifts exactly the `d` displaced
            // entries, making the per-server cost `O(log n + d)` — on quiet
            // rounds loads barely move, so `d` stays tiny and the repair
            // never touches `O(n)`.
            let from = self.pos[s];
            self.loads[s] = load;
            let left = self.order[..from].partition_point(|&r| (self.loads[r], r) < (load, s));
            if left < from {
                // Target precedes `from`: rotate s back into place.
                self.order[left..=from].rotate_right(1);
                for i in left..=from {
                    self.pos[self.order[i]] = i;
                }
            } else {
                // Target is at or after `from`: search the right half (its
                // indices shift down by one once s conceptually vacates
                // `from`, which the left rotation below realizes).
                let to = from
                    + self.order[from + 1..].partition_point(|&r| (self.loads[r], r) < (load, s));
                if to > from {
                    self.order[from..=to].rotate_left(1);
                    for i in from..=to {
                        self.pos[self.order[i]] = i;
                    }
                }
            }
        }
        // O(k) invariant spot-check around every dirty server (the cold
        // full-order sweep would cost O(n) per repair even in debug runs at
        // mean-field scale); the `repaired_order_is_identical_to_the_cold_
        // sort` test pins down full equality with the stable sort.
        #[cfg(debug_assertions)]
        for &s in dirty {
            let i = self.pos[s as usize];
            let here = (self.loads[self.order[i]], self.order[i]);
            if i > 0 {
                let prev = self.order[i - 1];
                debug_assert!(
                    (self.loads[prev], prev) < here,
                    "load order invariant broken before dirty server {s}"
                );
            }
            if i + 1 < n {
                let next = self.order[i + 1];
                debug_assert!(
                    here < (self.loads[next], next),
                    "load order invariant broken after dirty server {s}"
                );
            }
        }
    }
}

/// Computes the ideal workload given a pre-sorted order (Algorithm 3 proper,
/// `O(n)`).
///
/// `order` must list all server indices in non-decreasing order of
/// `q_s / µ_s`, e.g. as produced by [`sorted_by_load`].
///
/// # Panics
/// Panics on inconsistent input lengths, an empty cluster, a negative or
/// non-finite arrival count, or an `order` that is not a permutation of
/// `0..n` (checked with debug assertions).
pub fn compute_iwl_with_order(
    queues: &[u64],
    rates: &[f64],
    arrivals: f64,
    order: &[usize],
) -> f64 {
    let n = queues.len();
    assert_eq!(n, rates.len(), "queues and rates must have equal length");
    assert_eq!(n, order.len(), "order must cover every server");
    assert!(n > 0, "cluster must contain at least one server");
    assert!(
        arrivals.is_finite() && arrivals >= 0.0,
        "arrivals must be a finite non-negative number, got {arrivals}"
    );
    debug_assert!(
        {
            let mut seen = vec![false; n];
            order.iter().all(|&i| {
                let fresh = i < n && !seen[i];
                if i < n {
                    seen[i] = true;
                }
                fresh
            })
        },
        "order must be a permutation of 0..n"
    );

    let load = |i: usize| queues[i] as f64 / rates[i];

    let mut remaining = arrivals;
    let mut mu_tot = 0.0;
    let mut iwl = load(order[0]);
    let mut idx = 0usize;

    while remaining > 0.0 {
        let r = order[idx];
        mu_tot += rates[r];
        idx += 1;
        if idx == n {
            return iwl + remaining / mu_tot;
        }
        let next_load = load(order[idx]);
        let delta = next_load - iwl;
        if delta * mu_tot >= remaining {
            return iwl + remaining / mu_tot;
        }
        remaining -= delta * mu_tot;
        iwl = next_load;
    }
    iwl
}

/// Computes the ideal workload over a **class-compressed** snapshot by the
/// same Michelot-style iterative trimming the dense solver path uses: all
/// members of one `(q, µ)` equivalence class share a load, so they enter
/// and leave the active set together and the water-filling fixpoint can be
/// found over `C` classes instead of `n` servers.
///
/// `cq`, `cmu` and `loads` are the per-class aggregates
/// `count·q`, `count·µ` and `q/µ` (see `scd_model::ClassPartition`), all of
/// length `C`. The fixpoint solves exactly the dense water-filling
/// conditions; only the summation *grouping* differs from the per-server
/// sweep, so the result can differ from the dense level in the last ulps —
/// which is why the compressed dispatch path that consumes it is a
/// deliberate sample-path change, not a drop-in.
///
/// The sweeps are branchless (mask multiplies contribute exactly `1.0·x`
/// or `±0.0`, which never changes a float sum — bit-identical to a branchy
/// accumulation) because active classes are scattered in canonical class
/// order, where a data-dependent branch would mispredict heavily.
pub fn iwl_by_trimming_grouped(cq: &[f64], cmu: &[f64], loads: &[f64], arrivals: f64) -> f64 {
    debug_assert!(arrivals >= 1.0);
    debug_assert_eq!(cq.len(), cmu.len());
    debug_assert_eq!(cq.len(), loads.len());
    let c = loads.len();
    let sum_q: f64 = cq.iter().sum();
    let sum_mu: f64 = cmu.iter().sum();
    let mut level = (arrivals + sum_q) / sum_mu;
    let mut active = c;
    // Same termination argument as the dense trimming loop: the level is
    // non-increasing (clamped against ulp-level oscillation when a class
    // sits exactly on the waterline), so the active set shrinks
    // monotonically and at most `C` iterations are needed.
    for _ in 0..=c {
        let mut sq = 0.0;
        let mut smu = 0.0;
        let mut count = 0usize;
        for ((&load, &q_mass), &mu_mass) in loads.iter().zip(cq).zip(cmu) {
            let member = load < level;
            let mask = member as u64 as f64;
            sq += mask * q_mass;
            smu += mask * mu_mass;
            count += member as usize;
        }
        if count == active || count == 0 {
            break;
        }
        active = count;
        level = level.min((arrivals + sq) / smu);
    }
    level
}

/// The ideally balanced (fractional) assignment `ā_s` implied by an ideal
/// workload (Eq. 2): `ā_s = µ_s · max(q_s/µ_s, iwl) − q_s`.
///
/// The returned amounts are non-negative and — when `iwl` was produced by
/// [`compute_iwl`] for the same inputs — sum to the total number of arrivals
/// (up to floating-point round-off).
///
/// # Panics
/// Panics if `queues` and `rates` have different lengths.
///
/// # Example
/// ```
/// use scd_core::iwl::{compute_iwl, ideal_assignment};
/// let queues = [2u64, 1, 3, 1];
/// let rates = [5.0, 2.0, 1.0, 1.0];
/// let iwl = compute_iwl(&queues, &rates, 7.0);
/// let assignment = ideal_assignment(&queues, &rates, iwl);
/// // Figure 1b of the paper: [4.875, 1.75, 0, 0.375].
/// assert!((assignment[0] - 4.875).abs() < 1e-9);
/// assert!((assignment[2] - 0.0).abs() < 1e-9);
/// ```
pub fn ideal_assignment(queues: &[u64], rates: &[f64], iwl: f64) -> Vec<f64> {
    assert_eq!(
        queues.len(),
        rates.len(),
        "queues and rates must have equal length"
    );
    queues
        .iter()
        .zip(rates)
        .map(|(&q, &mu)| {
            let load = q as f64 / mu;
            mu * load.max(iwl) - q as f64
        })
        .collect()
}

/// The post-assignment workload of every server under the ideally balanced
/// assignment: `max(q_s/µ_s, iwl)`.
pub fn ideal_workloads(queues: &[u64], rates: &[f64], iwl: f64) -> Vec<f64> {
    assert_eq!(
        queues.len(),
        rates.len(),
        "queues and rates must have equal length"
    );
    queues
        .iter()
        .zip(rates)
        .map(|(&q, &mu)| (q as f64 / mu).max(iwl))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn figure1_ideal_workload_and_assignment() {
        let queues = [2u64, 1, 3, 1];
        let rates = [5.0, 2.0, 1.0, 1.0];
        let iwl = compute_iwl(&queues, &rates, 7.0);
        assert!((iwl - 1.375).abs() < EPS);

        let assignment = ideal_assignment(&queues, &rates, iwl);
        let expected = [4.875, 1.75, 0.0, 0.375];
        for (got, want) in assignment.iter().zip(expected) {
            assert!((got - want).abs() < EPS, "got {got}, want {want}");
        }
        let total: f64 = assignment.iter().sum();
        assert!((total - 7.0).abs() < EPS);

        let workloads = ideal_workloads(&queues, &rates, iwl);
        assert!((workloads[0] - 1.375).abs() < EPS);
        assert!(
            (workloads[2] - 3.0).abs() < EPS,
            "overloaded server keeps its load"
        );
    }

    #[test]
    fn figure2_ideal_workload() {
        // One fast server (µ=10) with 9 queued jobs, eight idle slow servers
        // (µ=1), 7 incoming jobs → IWL = 0.875.
        let mut queues = vec![9u64];
        queues.extend(std::iter::repeat_n(0, 8));
        let mut rates = vec![10.0];
        rates.extend(std::iter::repeat_n(1.0, 8));
        let iwl = compute_iwl(&queues, &rates, 7.0);
        assert!((iwl - 0.875).abs() < EPS);
    }

    #[test]
    fn zero_arrivals_keep_minimum_load() {
        let queues = [4u64, 2, 0];
        let rates = [2.0, 2.0, 1.0];
        let iwl = compute_iwl(&queues, &rates, 0.0);
        assert!((iwl - 0.0).abs() < EPS);
        let assignment = ideal_assignment(&queues, &rates, iwl);
        assert!(assignment.iter().all(|&a| a.abs() < EPS));
    }

    #[test]
    fn single_server_gets_everything() {
        let iwl = compute_iwl(&[3], &[2.0], 5.0);
        assert!((iwl - 4.0).abs() < EPS, "(3 + 5) / 2 = 4");
        let assignment = ideal_assignment(&[3], &[2.0], iwl);
        assert!((assignment[0] - 5.0).abs() < EPS);
    }

    #[test]
    fn homogeneous_empty_cluster_splits_evenly() {
        let queues = [0u64; 4];
        let rates = [1.0; 4];
        let iwl = compute_iwl(&queues, &rates, 8.0);
        assert!((iwl - 2.0).abs() < EPS);
        let assignment = ideal_assignment(&queues, &rates, iwl);
        assert!(assignment.iter().all(|&a| (a - 2.0).abs() < EPS));
    }

    #[test]
    fn heavily_loaded_servers_receive_nothing() {
        let queues = [100u64, 0, 0];
        let rates = [1.0, 1.0, 1.0];
        let iwl = compute_iwl(&queues, &rates, 10.0);
        assert!((iwl - 5.0).abs() < EPS);
        let assignment = ideal_assignment(&queues, &rates, iwl);
        assert!((assignment[0] - 0.0).abs() < EPS);
        assert!((assignment[1] - 5.0).abs() < EPS);
        assert!((assignment[2] - 5.0).abs() < EPS);
    }

    #[test]
    fn fractional_arrivals_are_supported() {
        // The SCD policy feeds the *estimated* arrivals, which can be any
        // positive real number.
        let iwl = compute_iwl(&[0, 0], &[1.0, 3.0], 2.5);
        assert!((iwl - 0.625).abs() < EPS);
    }

    #[test]
    fn conservation_holds_on_random_instances() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2021);
        for _ in 0..200 {
            let n = rng.gen_range(1..40);
            let queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..50)).collect();
            let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..20.0)).collect();
            let arrivals = rng.gen_range(0..200) as f64;
            let iwl = compute_iwl(&queues, &rates, arrivals);
            let assignment = ideal_assignment(&queues, &rates, iwl);
            let total: f64 = assignment.iter().sum();
            assert!(
                (total - arrivals).abs() < 1e-6 * (1.0 + arrivals),
                "conservation violated: assigned {total}, arrived {arrivals}"
            );
            assert!(assignment.iter().all(|&a| a >= -1e-9));
            // IWL is at least the pre-assignment minimum load.
            let min_load = queues
                .iter()
                .zip(&rates)
                .map(|(&q, &mu)| q as f64 / mu)
                .fold(f64::INFINITY, f64::min);
            assert!(iwl >= min_load - 1e-9);
        }
    }

    #[test]
    fn presorted_variant_matches_sorting_variant() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let n = rng.gen_range(1..30);
            let queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..20)).collect();
            let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..10.0)).collect();
            let arrivals = rng.gen_range(0.0..50.0);
            let order = sorted_by_load(&queues, &rates);
            let a = compute_iwl(&queues, &rates, arrivals);
            let b = compute_iwl_with_order(&queues, &rates, arrivals, &order);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn iwl_is_monotone_in_arrivals() {
        let queues = [5u64, 1, 0, 7];
        let rates = [2.0, 1.0, 4.0, 3.0];
        let mut last = 0.0;
        for a in 0..60 {
            let iwl = compute_iwl(&queues, &rates, a as f64);
            assert!(
                iwl + 1e-12 >= last,
                "IWL must not decrease as arrivals grow"
            );
            last = iwl;
        }
    }

    #[test]
    fn sorted_by_load_into_matches_the_allocating_sort() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(88);
        let mut scratch = Vec::new();
        for _ in 0..50 {
            let n = rng.gen_range(1..40);
            let queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..10)).collect();
            let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..8.0)).collect();
            sorted_by_load_into(&queues, &rates, &mut scratch);
            assert_eq!(scratch, sorted_by_load(&queues, &rates));
        }
    }

    /// The incremental order's core guarantee: across long random drifting
    /// trajectories (including homogeneous clusters with many exact load
    /// ties), `repair` from the round's dirty set reproduces the cold stable
    /// sort **exactly** — same permutation, not merely an equivalent one —
    /// so Algorithm 3 over it is bit-identical to the cold path.
    #[test]
    fn repaired_order_is_identical_to_the_cold_sort() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x10AD);
        for case in 0..40 {
            let n = rng.gen_range(1..60);
            let rates: Vec<f64> = if case % 3 == 0 {
                vec![rng.gen_range(1..4) as f64; n]
            } else {
                (0..n).map(|_| rng.gen_range(0.5..10.0)).collect()
            };
            let mut queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..8)).collect();
            let mut order = LoadOrder::new();
            order.rebuild(&queues, &rates);
            for round in 0..120 {
                // Dirty a few servers (duplicates + unchanged allowed); every
                // changed server must be listed.
                let k = rng.gen_range(0..=n.min(6));
                let mut dirty: Vec<u32> = (0..k).map(|_| rng.gen_range(0..n) as u32).collect();
                for &s in dirty.clone().iter() {
                    if rng.gen_range(0..4) != 0 {
                        queues[s as usize] = rng.gen_range(0..8);
                    }
                }
                if k > 0 {
                    dirty.push(dirty[0]);
                }
                order.repair(&queues, &rates, &dirty);
                assert_eq!(
                    order.order(),
                    &sorted_by_load(&queues, &rates)[..],
                    "case {case} round {round}"
                );
                let arrivals = rng.gen_range(0.0..40.0);
                let warm = compute_iwl_with_order(&queues, &rates, arrivals, order.order());
                let cold = compute_iwl(&queues, &rates, arrivals);
                assert_eq!(
                    warm.to_bits(),
                    cold.to_bits(),
                    "case {case} round {round}: IWL over the repaired order diverged"
                );
            }
        }
    }

    #[test]
    fn repair_falls_back_to_rebuild_on_dense_or_stale_input() {
        let rates = [1.0, 2.0, 4.0, 8.0, 1.0, 2.0, 4.0, 8.0];
        let mut queues = [5u64, 4, 3, 2, 1, 0, 7, 6];
        let mut order = LoadOrder::new();
        // Uninitialized → rebuild despite the empty dirty set.
        order.repair(&queues, &rates, &[]);
        assert_eq!(order.order(), &sorted_by_load(&queues, &rates)[..]);
        assert_eq!(order.len(), 8);
        assert!(!order.is_empty());
        // Dense dirty set (≥ n/4) → rebuild path; result identical anyway.
        for (s, q) in queues.iter_mut().enumerate() {
            *q = (s as u64 * 3 + 1) % 7;
        }
        order.repair(&queues, &rates, &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(order.order(), &sorted_by_load(&queues, &rates)[..]);
        // Cluster-size change → rebuild.
        order.repair(&[1, 0], &[1.0, 1.0], &[]);
        assert_eq!(order.order(), &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn load_order_rejects_mismatched_inputs() {
        LoadOrder::new().rebuild(&[1, 2], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_inputs_panic() {
        compute_iwl(&[1, 2], &[1.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_panics() {
        compute_iwl(&[], &[], 1.0);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_arrivals_panic() {
        compute_iwl(&[1], &[1.0], -1.0);
    }
}
