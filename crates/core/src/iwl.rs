//! The ideally balanced assignment and the ideal workload (Section 3.1,
//! Algorithm 3 of the paper).
//!
//! Given the current queue lengths `q_s`, the service rates `µ_s` and the
//! total number of incoming jobs `a`, the *ideal workload* (IWL) is the
//! max-min-fair post-assignment load level: the value of
//!
//! ```text
//!   max min_s (q_s + ā_s) / µ_s    s.t.  Σ_s ā_s = a,  ā_s ≥ 0
//! ```
//!
//! if the incoming work were infinitely divisible. The corresponding
//! *ideally balanced assignment* is `ā_s = µ_s · max(q_s/µ_s, iwl) − q_s`
//! (Eq. 2). SCD measures every realizable (integral, randomized) assignment
//! against this ideal.

/// Computes the ideal workload by sorting servers by their current load
/// `q_s / µ_s` and then water-filling the `a` units of incoming work
/// (Algorithm 3).
///
/// Runs in `O(n log n)`; use [`compute_iwl_with_order`] when the caller
/// already maintains the sorted order.
///
/// # Panics
/// Panics if `queues` and `rates` have different lengths, if `rates` is
/// empty, or if `arrivals` is negative or not finite. Rates must be strictly
/// positive (guaranteed by [`scd_model::ClusterSpec`]); a non-positive rate
/// makes the load `q/µ` meaningless and triggers a debug assertion.
///
/// # Example
/// ```
/// use scd_core::iwl::compute_iwl;
/// // Figure 1: rates [5,2,1,1], queues [2,1,3,1], 7 new jobs → IWL = 1.375.
/// let iwl = compute_iwl(&[2, 1, 3, 1], &[5.0, 2.0, 1.0, 1.0], 7.0);
/// assert!((iwl - 1.375).abs() < 1e-12);
/// ```
pub fn compute_iwl(queues: &[u64], rates: &[f64], arrivals: f64) -> f64 {
    let order = sorted_by_load(queues, rates);
    compute_iwl_with_order(queues, rates, arrivals, &order)
}

/// Returns the server indices sorted in non-decreasing order of load
/// `q_s / µ_s` — the order required by [`compute_iwl_with_order`].
pub fn sorted_by_load(queues: &[u64], rates: &[f64]) -> Vec<usize> {
    assert_eq!(
        queues.len(),
        rates.len(),
        "queues and rates must have equal length"
    );
    let mut order: Vec<usize> = (0..queues.len()).collect();
    order.sort_by(|&a, &b| {
        let la = queues[a] as f64 / rates[a];
        let lb = queues[b] as f64 / rates[b];
        la.partial_cmp(&lb).expect("loads are finite")
    });
    order
}

/// Computes the ideal workload given a pre-sorted order (Algorithm 3 proper,
/// `O(n)`).
///
/// `order` must list all server indices in non-decreasing order of
/// `q_s / µ_s`, e.g. as produced by [`sorted_by_load`].
///
/// # Panics
/// Panics on inconsistent input lengths, an empty cluster, a negative or
/// non-finite arrival count, or an `order` that is not a permutation of
/// `0..n` (checked with debug assertions).
pub fn compute_iwl_with_order(
    queues: &[u64],
    rates: &[f64],
    arrivals: f64,
    order: &[usize],
) -> f64 {
    let n = queues.len();
    assert_eq!(n, rates.len(), "queues and rates must have equal length");
    assert_eq!(n, order.len(), "order must cover every server");
    assert!(n > 0, "cluster must contain at least one server");
    assert!(
        arrivals.is_finite() && arrivals >= 0.0,
        "arrivals must be a finite non-negative number, got {arrivals}"
    );
    debug_assert!(
        {
            let mut seen = vec![false; n];
            order.iter().all(|&i| {
                let fresh = i < n && !seen[i];
                if i < n {
                    seen[i] = true;
                }
                fresh
            })
        },
        "order must be a permutation of 0..n"
    );

    let load = |i: usize| queues[i] as f64 / rates[i];

    let mut remaining = arrivals;
    let mut mu_tot = 0.0;
    let mut iwl = load(order[0]);
    let mut idx = 0usize;

    while remaining > 0.0 {
        let r = order[idx];
        mu_tot += rates[r];
        idx += 1;
        if idx == n {
            return iwl + remaining / mu_tot;
        }
        let next_load = load(order[idx]);
        let delta = next_load - iwl;
        if delta * mu_tot >= remaining {
            return iwl + remaining / mu_tot;
        }
        remaining -= delta * mu_tot;
        iwl = next_load;
    }
    iwl
}

/// The ideally balanced (fractional) assignment `ā_s` implied by an ideal
/// workload (Eq. 2): `ā_s = µ_s · max(q_s/µ_s, iwl) − q_s`.
///
/// The returned amounts are non-negative and — when `iwl` was produced by
/// [`compute_iwl`] for the same inputs — sum to the total number of arrivals
/// (up to floating-point round-off).
///
/// # Panics
/// Panics if `queues` and `rates` have different lengths.
///
/// # Example
/// ```
/// use scd_core::iwl::{compute_iwl, ideal_assignment};
/// let queues = [2u64, 1, 3, 1];
/// let rates = [5.0, 2.0, 1.0, 1.0];
/// let iwl = compute_iwl(&queues, &rates, 7.0);
/// let assignment = ideal_assignment(&queues, &rates, iwl);
/// // Figure 1b of the paper: [4.875, 1.75, 0, 0.375].
/// assert!((assignment[0] - 4.875).abs() < 1e-9);
/// assert!((assignment[2] - 0.0).abs() < 1e-9);
/// ```
pub fn ideal_assignment(queues: &[u64], rates: &[f64], iwl: f64) -> Vec<f64> {
    assert_eq!(
        queues.len(),
        rates.len(),
        "queues and rates must have equal length"
    );
    queues
        .iter()
        .zip(rates)
        .map(|(&q, &mu)| {
            let load = q as f64 / mu;
            mu * load.max(iwl) - q as f64
        })
        .collect()
}

/// The post-assignment workload of every server under the ideally balanced
/// assignment: `max(q_s/µ_s, iwl)`.
pub fn ideal_workloads(queues: &[u64], rates: &[f64], iwl: f64) -> Vec<f64> {
    assert_eq!(
        queues.len(),
        rates.len(),
        "queues and rates must have equal length"
    );
    queues
        .iter()
        .zip(rates)
        .map(|(&q, &mu)| (q as f64 / mu).max(iwl))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn figure1_ideal_workload_and_assignment() {
        let queues = [2u64, 1, 3, 1];
        let rates = [5.0, 2.0, 1.0, 1.0];
        let iwl = compute_iwl(&queues, &rates, 7.0);
        assert!((iwl - 1.375).abs() < EPS);

        let assignment = ideal_assignment(&queues, &rates, iwl);
        let expected = [4.875, 1.75, 0.0, 0.375];
        for (got, want) in assignment.iter().zip(expected) {
            assert!((got - want).abs() < EPS, "got {got}, want {want}");
        }
        let total: f64 = assignment.iter().sum();
        assert!((total - 7.0).abs() < EPS);

        let workloads = ideal_workloads(&queues, &rates, iwl);
        assert!((workloads[0] - 1.375).abs() < EPS);
        assert!(
            (workloads[2] - 3.0).abs() < EPS,
            "overloaded server keeps its load"
        );
    }

    #[test]
    fn figure2_ideal_workload() {
        // One fast server (µ=10) with 9 queued jobs, eight idle slow servers
        // (µ=1), 7 incoming jobs → IWL = 0.875.
        let mut queues = vec![9u64];
        queues.extend(std::iter::repeat_n(0, 8));
        let mut rates = vec![10.0];
        rates.extend(std::iter::repeat_n(1.0, 8));
        let iwl = compute_iwl(&queues, &rates, 7.0);
        assert!((iwl - 0.875).abs() < EPS);
    }

    #[test]
    fn zero_arrivals_keep_minimum_load() {
        let queues = [4u64, 2, 0];
        let rates = [2.0, 2.0, 1.0];
        let iwl = compute_iwl(&queues, &rates, 0.0);
        assert!((iwl - 0.0).abs() < EPS);
        let assignment = ideal_assignment(&queues, &rates, iwl);
        assert!(assignment.iter().all(|&a| a.abs() < EPS));
    }

    #[test]
    fn single_server_gets_everything() {
        let iwl = compute_iwl(&[3], &[2.0], 5.0);
        assert!((iwl - 4.0).abs() < EPS, "(3 + 5) / 2 = 4");
        let assignment = ideal_assignment(&[3], &[2.0], iwl);
        assert!((assignment[0] - 5.0).abs() < EPS);
    }

    #[test]
    fn homogeneous_empty_cluster_splits_evenly() {
        let queues = [0u64; 4];
        let rates = [1.0; 4];
        let iwl = compute_iwl(&queues, &rates, 8.0);
        assert!((iwl - 2.0).abs() < EPS);
        let assignment = ideal_assignment(&queues, &rates, iwl);
        assert!(assignment.iter().all(|&a| (a - 2.0).abs() < EPS));
    }

    #[test]
    fn heavily_loaded_servers_receive_nothing() {
        let queues = [100u64, 0, 0];
        let rates = [1.0, 1.0, 1.0];
        let iwl = compute_iwl(&queues, &rates, 10.0);
        assert!((iwl - 5.0).abs() < EPS);
        let assignment = ideal_assignment(&queues, &rates, iwl);
        assert!((assignment[0] - 0.0).abs() < EPS);
        assert!((assignment[1] - 5.0).abs() < EPS);
        assert!((assignment[2] - 5.0).abs() < EPS);
    }

    #[test]
    fn fractional_arrivals_are_supported() {
        // The SCD policy feeds the *estimated* arrivals, which can be any
        // positive real number.
        let iwl = compute_iwl(&[0, 0], &[1.0, 3.0], 2.5);
        assert!((iwl - 0.625).abs() < EPS);
    }

    #[test]
    fn conservation_holds_on_random_instances() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2021);
        for _ in 0..200 {
            let n = rng.gen_range(1..40);
            let queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..50)).collect();
            let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..20.0)).collect();
            let arrivals = rng.gen_range(0..200) as f64;
            let iwl = compute_iwl(&queues, &rates, arrivals);
            let assignment = ideal_assignment(&queues, &rates, iwl);
            let total: f64 = assignment.iter().sum();
            assert!(
                (total - arrivals).abs() < 1e-6 * (1.0 + arrivals),
                "conservation violated: assigned {total}, arrived {arrivals}"
            );
            assert!(assignment.iter().all(|&a| a >= -1e-9));
            // IWL is at least the pre-assignment minimum load.
            let min_load = queues
                .iter()
                .zip(&rates)
                .map(|(&q, &mu)| q as f64 / mu)
                .fold(f64::INFINITY, f64::min);
            assert!(iwl >= min_load - 1e-9);
        }
    }

    #[test]
    fn presorted_variant_matches_sorting_variant() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let n = rng.gen_range(1..30);
            let queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..20)).collect();
            let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..10.0)).collect();
            let arrivals = rng.gen_range(0.0..50.0);
            let order = sorted_by_load(&queues, &rates);
            let a = compute_iwl(&queues, &rates, arrivals);
            let b = compute_iwl_with_order(&queues, &rates, arrivals, &order);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn iwl_is_monotone_in_arrivals() {
        let queues = [5u64, 1, 0, 7];
        let rates = [2.0, 1.0, 4.0, 3.0];
        let mut last = 0.0;
        for a in 0..60 {
            let iwl = compute_iwl(&queues, &rates, a as f64);
            assert!(
                iwl + 1e-12 >= last,
                "IWL must not decrease as arrivals grow"
            );
            last = iwl;
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_inputs_panic() {
        compute_iwl(&[1, 2], &[1.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_panics() {
        compute_iwl(&[], &[], 1.0);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_arrivals_panic() {
        compute_iwl(&[1], &[1.0], -1.0);
    }
}
