//! Incremental indexed queue views: a tournament tree (segment-tree min)
//! over per-server keys.
//!
//! Argmin-family policies (JSQ, SED, LSQ, LED and their heterogeneity-aware
//! variants) repeatedly ask "which server currently minimizes my key?" while
//! placing a batch, updating a *single* server's key after every placement.
//! The scan implementation answers each question in `O(n)`, making a batch of
//! `b` jobs cost `O(b·n)`. The [`TournamentTree`] answers the same question
//! from a binary tournament over the keys: rebuilding costs `O(n)` once per
//! batch, each argmin query reads the root in `O(1)`, and each key update
//! replays `O(log n)` internal matches — `O(n + b·log n)` per batch.
//!
//! Policies whose keys change at only a few positions between batches
//! (LSQ/LED: probes + their own placements) skip even the per-batch rebuild:
//! they keep one *warm* tree per policy instance across rounds and repair the
//! dirty keys through [`TournamentTree::apply_updates`] — `O(k·log n)` for
//! `k` dirty slots, with an internal `O(n)` fallback when the dirty set is
//! dense. The warm lifecycle (who owns the priorities, when they refresh) is
//! managed by `scd_policies::common::BatchArgmin`.
//!
//! # Total order and tie-breaking
//!
//! The tree (and its scan reference [`scan_argmin`]) minimizes the composite
//! key `(key, priority, index)` lexicographically:
//!
//! * `key` is the policy's ranking value (queue length for JSQ, expected
//!   delay `(q+1)/µ` for SED-style ranking) — a finite `f64`;
//! * `priority` is a per-batch random `u64` drawn by the caller for every
//!   server. Drawing fresh priorities per batch realizes a uniformly random
//!   tie-breaking order among equal keys, which is what prevents many
//!   dispatchers sharing one snapshot from herding onto low-index servers
//!   (the role `argmin_random_ties` played in the scan implementation);
//! * `index` is a deterministic last resort, reachable only if two servers
//!   draw the same 64-bit priority.
//!
//! Because the indexed and scan paths minimize the *same* composite key and
//! consume randomness identically (the priority draws), they pick identical
//! servers for identical RNG streams — the property the `dispatch_into`
//! equivalence tests pin down.
//!
//! # NaN discipline
//!
//! Keys must be finite: the comparisons use plain `<` / `==`, so a NaN key
//! would poison the tournament. Policies derive keys from queue lengths and
//! strictly positive rates, which cannot produce NaN; debug builds assert it.

/// A tournament tree (segment-tree min) over `n` slots keyed by
/// `(key, priority, index)`.
///
/// The tree is a flat array of `2·size` entries (`size` = `n` rounded up to a
/// power of two). Leaves `size..size+n` represent the slots; every internal
/// node stores the winning (minimal) leaf of its subtree; unused padding
/// leaves carry `+∞` keys so they never win. All buffers are reused across
/// [`rebuild`](TournamentTree::rebuild) calls, so a policy that owns a tree
/// performs no steady-state heap allocations.
///
/// # Example
/// ```
/// use scd_core::index::TournamentTree;
/// let mut tree = TournamentTree::new();
/// let keys = [3.0, 1.0, 2.0];
/// // Distinct priorities; ties are impossible with distinct keys.
/// tree.rebuild(3, |i| keys[i], |_| 0);
/// assert_eq!(tree.argmin(), 1);
/// tree.update_key(1, 5.0);
/// assert_eq!(tree.argmin(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TournamentTree {
    /// Number of live slots.
    n: usize,
    /// Number of leaves (power of two, ≥ max(n, 1)).
    size: usize,
    /// Per-leaf keys (padding leaves hold `+∞`).
    keys: Vec<f64>,
    /// Per-leaf tie-breaking priorities (padding leaves hold `u64::MAX`).
    prios: Vec<u64>,
    /// `winners[size + i] = i`; every internal node holds the winning leaf of
    /// its subtree; `winners[1]` (or the single leaf when `size == 1`) is the
    /// overall argmin.
    winners: Vec<u32>,
}

impl TournamentTree {
    /// Creates an empty tree; call [`rebuild`](TournamentTree::rebuild)
    /// before querying.
    pub fn new() -> Self {
        TournamentTree::default()
    }

    /// Number of live slots.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True before the first rebuild (or after a rebuild with `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `true` when leaf `a` beats (is strictly smaller than) leaf `b` in the
    /// composite `(key, priority, index)` order.
    #[inline]
    fn beats(&self, a: u32, b: u32) -> bool {
        let (ka, kb) = (self.keys[a as usize], self.keys[b as usize]);
        if ka != kb {
            return ka < kb;
        }
        let (pa, pb) = (self.prios[a as usize], self.prios[b as usize]);
        if pa != pb {
            return pa < pb;
        }
        a < b
    }

    #[inline]
    fn play(&self, left: u32, right: u32) -> u32 {
        if self.beats(right, left) {
            right
        } else {
            left
        }
    }

    /// Rebuilds the tournament over `n` slots in `O(n)`, reusing all buffers.
    ///
    /// `key` and `prio` are evaluated once per slot, in index order.
    ///
    /// # Panics
    /// Panics (debug builds) if a key is NaN. `+INFINITY` is a legal key
    /// (availability masks use it to bench down servers).
    pub fn rebuild<K, P>(&mut self, n: usize, mut key: K, mut prio: P)
    where
        K: FnMut(usize) -> f64,
        P: FnMut(usize) -> u64,
    {
        self.n = n;
        if n == 0 {
            return;
        }
        let size = n.next_power_of_two();
        if self.size != size {
            self.size = size;
            self.keys.clear();
            self.keys.resize(size, f64::INFINITY);
            self.prios.clear();
            self.prios.resize(size, u64::MAX);
            self.winners.clear();
            self.winners.resize(2 * size, 0);
            for (i, slot) in self.winners[size..].iter_mut().enumerate() {
                *slot = i as u32;
            }
        }
        for i in 0..n {
            let k = key(i);
            debug_assert!(!k.is_nan(), "tournament keys must not be NaN");
            self.keys[i] = k;
            self.prios[i] = prio(i);
        }
        // Padding leaves keep +∞ keys from the (re)allocation above; when the
        // tree shrinks within the same power of two, re-pad the now-dead tail.
        for i in n..size {
            self.keys[i] = f64::INFINITY;
            self.prios[i] = u64::MAX;
        }
        for node in (1..size).rev() {
            self.winners[node] = self.play(self.winners[2 * node], self.winners[2 * node + 1]);
        }
    }

    /// The slot minimizing `(key, priority, index)`, in `O(1)`.
    ///
    /// # Panics
    /// Panics if the tree is empty.
    #[inline]
    pub fn argmin(&self) -> usize {
        assert!(self.n > 0, "argmin over an empty tournament");
        // With size == 1 the single leaf lives at winners[1]; otherwise
        // winners[1] is the root of the internal matches. Either way index 1.
        self.winners[1] as usize
    }

    /// The current key of one slot.
    ///
    /// # Panics
    /// Panics if `slot >= len()`.
    pub fn key(&self, slot: usize) -> f64 {
        assert!(slot < self.n, "slot {slot} out of range {}", self.n);
        self.keys[slot]
    }

    /// Changes the key of one slot and replays its `O(log n)` matches, with
    /// an early exit once the outcome can no longer change.
    ///
    /// See the private `replay_path` helper for why the exit is sound —
    /// including during batch repairs.
    ///
    /// # Panics
    /// Panics if `slot >= len()`; debug builds also reject NaN keys.
    pub fn update_key(&mut self, slot: usize, key: f64) {
        assert!(slot < self.n, "slot {slot} out of range {}", self.n);
        debug_assert!(!key.is_nan(), "tournament keys must not be NaN");
        self.keys[slot] = key;
        self.replay_path(slot);
    }

    /// Replays the matches on one leaf-to-root path, stopping as soon as a
    /// replayed match keeps its stored winner *and* that winner is not the
    /// replaying slot itself.
    ///
    /// **Single update** (`update_key`): classic argument — an unchanged
    /// winner that is not the updated slot means every ancestor match
    /// compares exactly the operands it compared before, so the walk can
    /// stop. When the winner *is* the updated slot the walk continues (its
    /// key changed, so ancestor matches can still flip).
    ///
    /// **Batch repair** (`apply_updates` writes *all* dirty keys before
    /// replaying any path): the exit stays sound, even though the stored
    /// winner `w` at the exit node may itself be another dirty slot. Two
    /// cases for how `w` is stored at node `X` when the current replay
    /// exits there:
    ///
    /// * `w` still stored along its entire leaf→`X` chain (nobody dethroned
    ///   it). Then `w`'s own replay (before or after this one — order is
    ///   immaterial, keys are already final) cannot exit below `X`: every
    ///   stored winner on that chain is `w` itself, which forces the walk to
    ///   continue. It therefore re-plays `X` and everything above it with
    ///   `w`'s final key.
    /// * `w` was dethroned somewhere below `X` by an earlier replay of
    ///   another dirty slot `v`. Impossible at exit time: above the
    ///   dethroning node `w` can never be *recomputed* as a winner again
    ///   (its leaf lies in the subtree that now reports `v`, and a winner
    ///   pointer can only come from the subtree containing its leaf), and
    ///   `v`'s replay rewrote every `w`-stored ancestor precisely because
    ///   recomputed ≠ stored there — so the exit condition
    ///   `recomputed == stored == w` cannot be met.
    ///
    /// So every node either ends correct directly or is re-played by the
    /// dirty winner stored beneath it; the batch fuzz tests assert the full
    /// winner array equals a cold rebuild's, not just the root.
    #[inline]
    fn replay_path(&mut self, slot: usize) {
        let slot = slot as u32;
        let mut node = (self.size + slot as usize) >> 1;
        while node >= 1 {
            let winner = self.play(self.winners[2 * node], self.winners[2 * node + 1]);
            if winner == self.winners[node] && winner != slot {
                return;
            }
            self.winners[node] = winner;
            node >>= 1;
        }
    }

    /// Batch dirty-key repair: re-reads the key of every slot in `slots` and
    /// restores the tournament invariant, leaving priorities untouched.
    ///
    /// This is the warm-tree counterpart of
    /// [`rebuild`](TournamentTree::rebuild): a policy whose keys changed at
    /// only `k` positions since the last batch (probes, estimate decay)
    /// repairs those positions instead of rebuilding all `n`. Duplicate
    /// slots are allowed and harmless. When the dirty set is large enough
    /// that replaying `k` leaf-to-root paths would cost more than one linear
    /// pass (`k·log₂(size) ≥ size`), the internal matches are rebuilt in
    /// `O(n)` instead — both strategies produce identical winners, so the
    /// choice is invisible to callers.
    ///
    /// # Panics
    /// Panics if any slot is `>= len()`; debug builds also reject NaN
    /// keys.
    pub fn apply_updates<K>(&mut self, slots: &[u32], mut key: K)
    where
        K: FnMut(usize) -> f64,
    {
        if slots.is_empty() {
            return;
        }
        for &slot in slots {
            let s = slot as usize;
            assert!(s < self.n, "slot {s} out of range {}", self.n);
            let k = key(s);
            debug_assert!(!k.is_nan(), "tournament keys must not be NaN");
            self.keys[s] = k;
        }
        if self.size <= 1 {
            return;
        }
        if self.dense_repair_preferred(slots.len()) {
            for node in (1..self.size).rev() {
                self.winners[node] = self.play(self.winners[2 * node], self.winners[2 * node + 1]);
            }
        } else {
            for &slot in slots {
                self.replay_path(slot as usize);
            }
        }
    }

    /// The crossover heuristic of
    /// [`apply_updates`](TournamentTree::apply_updates): prefer the dense
    /// `O(n)` internal rebuild once replaying `k` leaf-to-root paths
    /// (`k·log₂(size)`, ignoring the early exits) would cost at least one
    /// linear pass. Pure function of `(k, size)` so the choice — invisible
    /// in the produced winners — is deterministic across replays.
    #[inline]
    fn dense_repair_preferred(&self, dirty: usize) -> bool {
        let log = self.size.trailing_zeros() as usize;
        dirty * log >= self.size
    }
}

/// Reference scan over the same `(key, priority, index)` composite order the
/// [`TournamentTree`] minimizes — `O(n)` per call.
///
/// This is both the fuzz-test oracle and the "scan mode" the argmin policies
/// keep for equivalence testing: for identical keys and priorities it returns
/// exactly the slot [`TournamentTree::argmin`] returns.
///
/// # Panics
/// Panics if `n == 0`.
pub fn scan_argmin<K, P>(n: usize, mut key: K, mut prio: P) -> usize
where
    K: FnMut(usize) -> f64,
    P: FnMut(usize) -> u64,
{
    assert!(n > 0, "argmin over an empty range");
    let mut best = 0usize;
    let mut best_key = key(0);
    let mut best_prio = prio(0);
    for i in 1..n {
        let k = key(i);
        if k < best_key || (k == best_key && prio(i) < best_prio) {
            best = i;
            best_key = k;
            best_prio = prio(i);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn finds_unique_minimum() {
        let keys = [5.0, 2.0, 7.0, 2.5];
        let mut tree = TournamentTree::new();
        tree.rebuild(4, |i| keys[i], |_| 0);
        assert_eq!(tree.argmin(), 1);
        assert_eq!(tree.len(), 4);
        assert!(!tree.is_empty());
        assert_eq!(tree.key(1), 2.0);
    }

    #[test]
    fn ties_resolve_by_priority_then_index() {
        let keys = [1.0, 1.0, 1.0];
        let prios = [7u64, 3, 3];
        let mut tree = TournamentTree::new();
        tree.rebuild(3, |i| keys[i], |i| prios[i]);
        // Slots 1 and 2 tie on priority; the lower index wins.
        assert_eq!(tree.argmin(), 1);
        assert_eq!(scan_argmin(3, |i| keys[i], |i| prios[i]), 1);
    }

    #[test]
    fn single_slot_tree_works() {
        let mut tree = TournamentTree::new();
        tree.rebuild(1, |_| 9.0, |_| 1);
        assert_eq!(tree.argmin(), 0);
        tree.update_key(0, 2.0);
        assert_eq!(tree.argmin(), 0);
        assert_eq!(tree.key(0), 2.0);
    }

    #[test]
    fn updates_move_the_winner() {
        let mut keys = [4.0, 1.0, 3.0, 2.0, 8.0];
        let mut tree = TournamentTree::new();
        tree.rebuild(5, |i| keys[i], |i| i as u64);
        assert_eq!(tree.argmin(), 1);
        keys[1] = 10.0;
        tree.update_key(1, keys[1]);
        assert_eq!(tree.argmin(), 3);
        keys[4] = 0.5;
        tree.update_key(4, keys[4]);
        assert_eq!(tree.argmin(), 4);
    }

    #[test]
    fn rebuild_reuses_buffers_across_sizes() {
        let mut tree = TournamentTree::new();
        for n in [5usize, 8, 3, 8, 16, 1, 100] {
            let keys: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % n) as f64).collect();
            tree.rebuild(n, |i| keys[i], |i| i as u64);
            let expect = scan_argmin(n, |i| keys[i], |i| i as u64);
            assert_eq!(tree.argmin(), expect, "n={n}");
        }
    }

    #[test]
    fn shrinking_within_a_power_of_two_repads_dead_leaves() {
        let mut tree = TournamentTree::new();
        tree.rebuild(8, |_| 0.0, |i| i as u64);
        assert_eq!(tree.argmin(), 0);
        // Shrink to 5 slots (same power of two = 8): old leaves 5..8 held
        // key 0.0 and must not win.
        tree.rebuild(5, |i| (i + 1) as f64, |i| i as u64);
        assert_eq!(tree.argmin(), 0);
        tree.update_key(0, 100.0);
        assert_eq!(tree.argmin(), 1);
    }

    #[test]
    #[should_panic(expected = "empty tournament")]
    fn argmin_on_empty_tree_panics() {
        let tree = TournamentTree::new();
        let _ = tree.argmin();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_out_of_range_panics() {
        let mut tree = TournamentTree::new();
        tree.rebuild(2, |_| 0.0, |i| i as u64);
        tree.update_key(2, 1.0);
    }

    /// The core fuzz property: a tree driven by random rebuilds and random
    /// incremental updates always agrees with the scan reference.
    #[test]
    fn fuzz_incremental_updates_match_scan_reference() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mut tree = TournamentTree::new();
        for case in 0..300 {
            let n = rng.gen_range(1..70);
            let mut keys: Vec<f64> = (0..n).map(|_| rng.gen_range(0..12) as f64).collect();
            let prios: Vec<u64> = (0..n).map(|_| rng.gen_range(0..6) as u64).collect();
            tree.rebuild(n, |i| keys[i], |i| prios[i]);
            for step in 0..80 {
                let expect = scan_argmin(n, |i| keys[i], |i| prios[i]);
                assert_eq!(tree.argmin(), expect, "case {case} step {step}");
                // Arrival (key up) or departure (key down) at a random slot.
                let slot = rng.gen_range(0..n);
                if rng.gen_range(0..2) == 0 {
                    keys[slot] += 1.0;
                } else {
                    keys[slot] = (keys[slot] - 1.0).max(0.0);
                }
                tree.update_key(slot, keys[slot]);
            }
        }
    }

    #[test]
    fn apply_updates_repairs_dirty_slots() {
        let mut keys = [4.0, 1.0, 3.0, 2.0, 8.0, 0.5, 6.0];
        let mut tree = TournamentTree::new();
        tree.rebuild(7, |i| keys[i], |i| i as u64);
        assert_eq!(tree.argmin(), 5);
        keys[5] = 9.0;
        keys[1] = 7.0;
        // Duplicate dirty entries must be harmless.
        tree.apply_updates(&[5, 1, 5], |i| keys[i]);
        assert_eq!(tree.argmin(), 3);
        assert_eq!(tree.key(5), 9.0);
        // Empty updates are a no-op.
        tree.apply_updates(&[], |_| unreachable!("no slots to read"));
        assert_eq!(tree.argmin(), 3);
    }

    #[test]
    fn apply_updates_on_single_slot_tree() {
        let mut tree = TournamentTree::new();
        tree.rebuild(1, |_| 5.0, |_| 0);
        tree.apply_updates(&[0], |_| 1.0);
        assert_eq!(tree.argmin(), 0);
        assert_eq!(tree.key(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn apply_updates_out_of_range_panics() {
        let mut tree = TournamentTree::new();
        tree.rebuild(2, |_| 0.0, |i| i as u64);
        tree.apply_updates(&[2], |_| 1.0);
    }

    /// The warm-lifecycle fuzz oracle: interleave sparse `apply_updates`
    /// repairs, dense repairs (forcing the internal `O(n)` fallback),
    /// priority "epoch refreshes" (full rebuild with fresh priorities) and
    /// plain rebuilds — after every operation the tree must agree with the
    /// naive scan over the same keys and priorities.
    #[test]
    fn fuzz_warm_lifecycle_matches_scan_reference() {
        let mut rng = StdRng::seed_from_u64(0x3A2B_11ED);
        let mut tree = TournamentTree::new();
        for case in 0..200 {
            let mut n = rng.gen_range(1..80);
            let mut keys: Vec<f64> = (0..n).map(|_| rng.gen_range(0..10) as f64).collect();
            let mut prios: Vec<u64> = (0..n).map(|_| rng.gen_range(0..5) as u64).collect();
            tree.rebuild(n, |i| keys[i], |i| prios[i]);
            for step in 0..60 {
                match rng.gen_range(0..10) {
                    // Sparse dirty repair: a handful of keys drift.
                    0..=4 => {
                        let k = rng.gen_range(1..=4.min(n));
                        let dirty: Vec<u32> = (0..k).map(|_| rng.gen_range(0..n) as u32).collect();
                        for &slot in &dirty {
                            keys[slot as usize] = rng.gen_range(0..10) as f64;
                        }
                        tree.apply_updates(&dirty, |i| keys[i]);
                    }
                    // Dense dirty repair: most keys drift, exercising the
                    // O(n) internal-rebuild fallback.
                    5..=6 => {
                        let dirty: Vec<u32> = (0..n)
                            .filter(|_| rng.gen_range(0..4) != 0)
                            .map(|i| i as u32)
                            .collect();
                        for &slot in &dirty {
                            keys[slot as usize] = rng.gen_range(0..10) as f64;
                        }
                        tree.apply_updates(&dirty, |i| keys[i]);
                    }
                    // Priority epoch refresh: same keys, fresh priorities.
                    7..=8 => {
                        for p in prios.iter_mut() {
                            *p = rng.gen_range(0..5) as u64;
                        }
                        tree.rebuild(n, |i| keys[i], |i| prios[i]);
                    }
                    // Full rebuild at a new size (cluster change).
                    _ => {
                        n = rng.gen_range(1..80);
                        keys = (0..n).map(|_| rng.gen_range(0..10) as f64).collect();
                        prios = (0..n).map(|_| rng.gen_range(0..5) as u64).collect();
                        tree.rebuild(n, |i| keys[i], |i| prios[i]);
                    }
                }
                let expect = scan_argmin(n, |i| keys[i], |i| prios[i]);
                assert_eq!(tree.argmin(), expect, "case {case} step {step}");
                // Stronger than the root check: the entire internal winner
                // array must equal a cold rebuild's — this is what certifies
                // the batch early exit in `replay_path` (every node, not
                // just the root, ends correct).
                let mut cold = TournamentTree::new();
                cold.rebuild(n, |i| keys[i], |i| prios[i]);
                assert_eq!(
                    tree.winners, cold.winners,
                    "case {case} step {step}: repaired tree diverged from a cold rebuild"
                );
            }
        }
    }

    /// The adversarial shape for the batch early exit: a dirty slot `w`
    /// whose key *worsens* while it is the stored winner high up the tree,
    /// plus a second dirty slot in a different subtree whose replay would
    /// early-exit at a `w`-stored ancestor. The doc argument on
    /// `replay_path` says `w`'s own replay must refresh those ancestors
    /// regardless of replay order — exercise both orders explicitly.
    #[test]
    fn batch_early_exit_survives_dethroned_stored_winners() {
        // 8 slots: slot 2 is the global winner stored at every level; slot 5
        // lives in the other half of the tree.
        let base = [7.0, 6.0, 1.0, 8.0, 9.0, 5.0, 7.5, 8.5];
        for order in [[2u32, 5u32], [5u32, 2u32]] {
            let mut keys = base;
            let mut tree = TournamentTree::new();
            tree.rebuild(8, |i| keys[i], |i| i as u64);
            assert_eq!(tree.argmin(), 2);
            // Slot 2's key worsens past everyone; slot 5 changes but stays a
            // non-winner in its local match — its replay can early-exit
            // while slot 2 is still stored above.
            keys[2] = 20.0;
            keys[5] = 6.5;
            tree.apply_updates(&order, |i| keys[i]);
            let mut cold = TournamentTree::new();
            cold.rebuild(8, |i| keys[i], |i| i as u64);
            assert_eq!(
                tree.winners, cold.winners,
                "order {order:?}: stale stored winner survived the batch repair"
            );
            assert_eq!(tree.argmin(), 1);
        }
    }

    /// Satellite coverage at mean-field scale: at `n = 10^5` the sparse
    /// dirty-repair path and the dense internal-rebuild fallback must agree
    /// **bit-identically** (full winner arrays) with each other and with a
    /// cold rebuild, on both sides of the crossover.
    #[test]
    fn apply_updates_paths_bit_identical_at_1e5() {
        let n = 100_000usize;
        let mut rng = StdRng::seed_from_u64(0x1E5);
        let mut keys: Vec<f64> = (0..n).map(|_| rng.gen_range(0..50) as f64).collect();
        let prios: Vec<u64> = (0..n).map(|_| rng.gen_range(0..u64::MAX)).collect();
        let mut sparse = TournamentTree::new();
        sparse.rebuild(n, |i| keys[i], |i| prios[i]);
        let mut dense = sparse.clone();
        // size = 2^17, log = 17 → the dense fallback engages at ≥ 7711
        // dirty slots. A 500-slot dirty set repairs sparsely; replaying the
        // same repair through a forced-dense clone must produce the same
        // bits.
        let dirty: Vec<u32> = (0..500).map(|_| rng.gen_range(0..n) as u32).collect();
        for &s in &dirty {
            keys[s as usize] = rng.gen_range(0..50) as f64;
        }
        assert!(!sparse.dense_repair_preferred(dirty.len()));
        sparse.apply_updates(&dirty, |i| keys[i]);
        // Forcing the dense path: a dirty list padded with duplicates past
        // the crossover touches the same keys but rebuilds internally.
        let mut padded = dirty.clone();
        while !dense.dense_repair_preferred(padded.len()) {
            padded.push(dirty[0]);
        }
        dense.apply_updates(&padded, |i| keys[i]);
        assert_eq!(sparse.winners, dense.winners);
        assert_eq!(sparse.keys, dense.keys);
        let mut cold = TournamentTree::new();
        cold.rebuild(n, |i| keys[i], |i| prios[i]);
        assert_eq!(sparse.winners, cold.winners);
        assert_eq!(sparse.argmin(), cold.argmin());
    }

    /// Crossover heuristic regression: the dense fallback must engage at
    /// exactly `⌈size / log₂(size)⌉` dirty slots — drifting this boundary
    /// silently trades the sub-linear quiet-round guarantee for linear
    /// passes (or vice versa the dense batch for `k` slow path replays).
    #[test]
    fn dense_crossover_boundary_is_exact() {
        let mut tree = TournamentTree::new();
        // n = 100_000 → size = 131_072 = 2^17, crossover at ⌈2^17/17⌉ = 7711.
        tree.rebuild(100_000, |_| 0.0, |i| i as u64);
        assert!(!tree.dense_repair_preferred(7710));
        assert!(tree.dense_repair_preferred(7711));
        // n = 8 → size = 8, log = 3, crossover at ⌈8/3⌉ = 3.
        tree.rebuild(8, |_| 0.0, |i| i as u64);
        assert!(!tree.dense_repair_preferred(2));
        assert!(tree.dense_repair_preferred(3));
    }
}
