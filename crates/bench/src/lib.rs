//! Shared helpers for the Criterion benchmarks.
//!
//! The benches back the paper's execution-run-time claims (Figures 5 and 8):
//! SCD with Algorithm 4 scales like JSQ and SED (`O(n log n)` per decision),
//! while Algorithm 1 is noticeably slower. They also cover ablations listed
//! in DESIGN.md (solver variants, alias vs CDF sampling, end-to-end
//! simulation throughput).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A synthetic high-load cluster snapshot: `n` servers with rates drawn from
/// `U[lo, hi]` and queue lengths drawn so that the backlog is roughly one
/// round's worth of work per server (the regime of the paper's ρ = 0.99
/// measurements).
pub fn bench_instance(n: usize, lo: f64, hi: f64, seed: u64) -> (Vec<u64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(lo..=hi)).collect();
    let queues: Vec<u64> = rates
        .iter()
        .map(|&mu| {
            let backlog = rng.gen_range(0.0..2.5) * mu;
            backlog.round() as u64
        })
        .collect();
    (queues, rates)
}

/// The batch size a single dispatcher handles per round in a system with `m`
/// dispatchers at offered load ~0.99 (used to size dispatch benchmarks).
pub fn typical_batch(rates: &[f64], m: usize) -> usize {
    let capacity: f64 = rates.iter().sum();
    ((0.99 * capacity / m as f64).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_instance_has_requested_shape() {
        let (queues, rates) = bench_instance(64, 1.0, 10.0, 3);
        assert_eq!(queues.len(), 64);
        assert_eq!(rates.len(), 64);
        assert!(rates.iter().all(|&r| (1.0..=10.0).contains(&r)));
        // Deterministic per seed.
        let again = bench_instance(64, 1.0, 10.0, 3);
        assert_eq!(again.0, queues);
        assert_eq!(again.1, rates);
    }

    #[test]
    fn typical_batch_is_positive_and_scales() {
        let (_, rates) = bench_instance(100, 1.0, 10.0, 1);
        let b10 = typical_batch(&rates, 10);
        let b5 = typical_batch(&rates, 5);
        assert!(b10 >= 1);
        assert!(b5 > b10);
    }
}
