//! End-to-end simulation throughput: how fast the round engine processes a
//! complete (arrivals → dispatching → departures) round under different
//! policies. Useful for sizing the full figure reproductions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scd_model::RateProfile;
use scd_policies::factory_by_name;
use scd_sim::{ArrivalSpec, ServiceModel, SimConfig, Simulation};
use std::hint::black_box;
use std::time::Duration;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_200_rounds");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let profile = RateProfile::paper_moderate();
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let spec = profile.materialize(50, &mut rng).expect("valid profile");

    for policy_name in ["SCD", "JSQ", "SED", "hLSQ", "WR"] {
        group.bench_with_input(
            BenchmarkId::new(policy_name, "n50_m5"),
            &policy_name,
            |b, _| {
                let config = SimConfig {
                    spec: spec.clone(),
                    num_dispatchers: 5,
                    rounds: 200,
                    warmup_rounds: 0,
                    seed: 3,
                    arrivals: ArrivalSpec::PoissonOfferedLoad { offered_load: 0.95 },
                    services: ServiceModel::Geometric,
                    measure_decision_times: false,
                    histogram_metrics: false,
                    scenario: scd_sim::ScenarioSpec::default(),
                    workload: scd_sim::WorkloadSpec::default(),
                };
                let simulation = Simulation::new(config).expect("valid configuration");
                let factory = factory_by_name(policy_name).expect("registered policy");
                b.iter(|| {
                    let report = simulation.run(factory.as_ref()).expect("clean run");
                    black_box(report.jobs_completed)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
