//! Per-decision dispatch-time benchmarks — the Criterion counterpart of the
//! paper's Figures 5 and 8.
//!
//! For every cluster size the bench measures the *full* per-round decision a
//! dispatcher makes under each policy (sorting, IWL, probability solve and
//! destination sampling for SCD; greedy scans for JSQ/SED), on a synthetic
//! high-load snapshot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scd_bench::{bench_instance, typical_batch};
use scd_model::{ClusterSpec, DispatchContext, DispatcherId};
use scd_policies::factory_by_name;
use std::hint::black_box;
use std::time::Duration;

const DISPATCHERS: usize = 10;

fn bench_policies(c: &mut Criterion, group_name: &str, lo: f64, hi: f64) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &n in &[100usize, 200, 400] {
        let (queues, rates) = bench_instance(n, lo, hi, 99);
        let spec = ClusterSpec::from_rates(rates.clone()).expect("valid rates");
        let batch = typical_batch(&rates, DISPATCHERS);

        for policy_name in ["SCD", "SCD(alg1)", "JSQ", "SED"] {
            let factory = factory_by_name(policy_name).expect("registered policy");
            group.bench_with_input(BenchmarkId::new(policy_name, n), &n, |b, _| {
                let mut policy = factory.build(DispatcherId::new(0), &spec);
                let mut rng = StdRng::seed_from_u64(5);
                let ctx = DispatchContext::new(&queues, &rates, DISPATCHERS, 0);
                b.iter(|| {
                    let out = policy.dispatch_batch(black_box(&ctx), black_box(batch), &mut rng);
                    black_box(out)
                })
            });
        }
    }
    group.finish();
}

fn bench_decision_time(c: &mut Criterion) {
    // Figure 5: moderate heterogeneity µ ~ U[1, 10].
    bench_policies(c, "decision_time_u1_10", 1.0, 10.0);
    // Figure 8: high heterogeneity µ ~ U[1, 100].
    bench_policies(c, "decision_time_u1_100", 1.0, 100.0);
}

criterion_group!(benches, bench_decision_time);
criterion_main!(benches);
