//! End-to-end engine throughput: rounds/second on the paper's 100-server /
//! 10-dispatcher cluster at 0.99 offered load, comparing the allocation-free
//! engine against a faithful reimplementation of the pre-refactor round loop.
//!
//! Run with `cargo bench --bench engine_throughput`. Writes the measurements
//! to `BENCH_engine.json` at the workspace root so future PRs can compare
//! against a recorded baseline (see `crates/bench/README.md` for the
//! methodology).
//!
//! The baseline reproduces the engine as it existed before the
//! allocation-free refactor, using only public APIs:
//!
//! * the queue-length snapshot is **cloned** every round;
//! * arrivals fill a **fresh `Vec<u64>`** every round, each drawn with the
//!   **O(λ) Knuth multiplication** Poisson sampler (the pre-refactor
//!   implementation; the refactor replaced it with inverted-CDF tables);
//! * service capacities recompute **`ln(1-p)` on every geometric draw**
//!   (now precomputed per server);
//! * every dispatch goes through the allocating `dispatch_batch` entry point
//!   and materializes a **fresh `Vec<ServerId>`**;
//! * per-server queues hold **one `VecDeque` entry per job**, and response
//!   times are recorded **one histogram update per job** (now run-length
//!   encoded segments + one bulk update per segment);
//! * queue statistics are observed with the same tracker the modern engine
//!   uses, on a cloned snapshot;
//! * JSQ and SED pick every job by the **`O(n)`-per-job reservoir-sampling
//!   argmin scan** (the pre-indexed-queue-view dispatch loop; the current
//!   policies answer each pick from a tournament tree in `O(log n)` after an
//!   `O(n)` per-batch rebuild);
//! * destination sampling draws **two RNG values per job** (`gen_range` +
//!   `gen::<f64>()`; the current alias sampler splits a single `u64`);
//! * stream seeds use the old `seed ^ TAG ^ (d << 32)` derivation.
//!
//! Both engines simulate exactly the same system (same cluster, load,
//! distributions and metrics); they differ only in implementation.
//!
//! Baselines that are *not* the legacy loop:
//!
//! * the **SCD row** compares the delta-aware decision path (engine dirty
//!   sets, warm-started verified solver, in-memo alias tables, sorted
//!   dispatch order) against the **PR 4 cold-solve path** reconstructed on
//!   the modern engine (`with_delta_rounds(false)` + `cold_solve()`); the
//!   two paths are bit-identical in decisions, so this is a same-trajectory
//!   comparison;
//! * the **LSQ / LED rows** compare the warm-tree dispatch path (one
//!   tournament per policy instance across rounds, dirty-key repair) against
//!   the PR 2 per-batch-rebuild path on the *modern* engine — the two paths
//!   consume the RNG differently (per-epoch vs per-batch priorities), so the
//!   comparison is same-workload, not same-trajectory;
//! * the **SWEEP row** runs a grid of many small simulation cells through
//!   `fan_out` and compares the persistent worker pool against the previous
//!   per-call scoped-thread implementation (`fan_out_scoped`), which is the
//!   workload where thread-startup costs dominate;
//! * the **SHARD row** runs the bench system on the sharded round engine,
//!   comparing a single shard (bit-identical to the unsharded engine) against
//!   a 4-way split of both servers and dispatchers executed on the worker
//!   pool. The split wins even on a single core because per-round costs are
//!   superlinear in `n` and `m` (solver and tree work shrink per shard);
//!   real multi-core hardware adds parallel speedup on top.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::Poisson;
use scd_core::policy::ScdFactory;
use scd_metrics::{QueueLengthTracker, ResponseTimeHistogram};
use scd_model::policy::validate_assignment;
use scd_model::{
    BoxedPolicy, ClusterSpec, DispatchContext, DispatchPolicy, DispatcherId, PolicyFactory,
    RateProfile, ServerId,
};
use scd_policies::{JsqFactory, LedFactory, LsqFactory, SedFactory, WeightedRandomFactory};
use scd_sim::{
    fan_out, fan_out_scoped, ArrivalSpec, ServiceModel, ShardedSimulation, SimConfig, Simulation,
};
use std::collections::VecDeque;
use std::time::Instant;

const SERVERS: usize = 100;
const DISPATCHERS: usize = 10;
const OFFERED_LOAD: f64 = 0.99;
const ROUNDS: u64 = 2_000;
const SEED: u64 = 7;
/// Identifies this bench definition's run in the recorded history; bump it
/// when the baseline or the optimized engine changes meaning, so earlier
/// recordings stay auditable.
const RUN_LABEL: &str =
    "PR 9: mean-field scale (SCD@10K row: class-compressed sampler + grouped trimming vs the \
     dense per-server fill/normalize/alias chain on a 10^4-server bimodal cluster; the PR 5 \
     rows re-measured on the refactored solver core)";
/// Interleaved measurement pairs per policy; `CRITERION_QUICK=1` drops to a
/// single pair (CI smoke test).
fn repetitions() -> usize {
    if std::env::var_os("CRITERION_QUICK").is_some() {
        1
    } else {
        9
    }
}

fn bench_config() -> SimConfig {
    let mut cluster_rng = StdRng::seed_from_u64(SEED);
    let spec = RateProfile::paper_moderate()
        .materialize(SERVERS, &mut cluster_rng)
        .expect("valid profile");
    SimConfig {
        spec,
        num_dispatchers: DISPATCHERS,
        rounds: ROUNDS,
        warmup_rounds: 0,
        seed: SEED,
        arrivals: ArrivalSpec::PoissonOfferedLoad {
            offered_load: OFFERED_LOAD,
        },
        services: ServiceModel::Geometric,
        measure_decision_times: false,
        histogram_metrics: false,
        scenario: scd_sim::ScenarioSpec::default(),
        workload: scd_sim::WorkloadSpec::default(),
    }
}

/// The pre-indexed-queue-view JSQ/SED dispatch loop: one `O(n)` argmin scan
/// with reservoir-sampled tie-breaking per job, over a local queue copy.
struct LegacyArgminPolicy {
    /// Rank servers by expected delay `(q+1)/µ` (SED) instead of queue
    /// length (JSQ).
    expected_delay: bool,
    local: Vec<u64>,
}

impl DispatchPolicy for LegacyArgminPolicy {
    fn policy_name(&self) -> &str {
        if self.expected_delay {
            "SED(legacy)"
        } else {
            "JSQ(legacy)"
        }
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        rng: &mut dyn rand::RngCore,
    ) -> Vec<ServerId> {
        use rand::Rng;
        self.local.clear();
        self.local.extend_from_slice(ctx.queue_lengths());
        let rates = ctx.rates();
        let n = self.local.len();
        let mut out = Vec::with_capacity(batch);
        for _ in 0..batch {
            // Inline argmin with reservoir-sampling tie-breaks — the exact
            // shape of the PR 1 `argmin_random_ties` dispatch loop.
            let score = |q: u64, s: usize| {
                if self.expected_delay {
                    (q as f64 + 1.0) / rates[s]
                } else {
                    q as f64
                }
            };
            let mut best = 0usize;
            let mut best_score = score(self.local[0], 0);
            let mut ties = 1u32;
            for s in 1..n {
                let value = score(self.local[s], s);
                if value < best_score {
                    best = s;
                    best_score = value;
                    ties = 1;
                } else if value == best_score {
                    ties += 1;
                    if rng.gen_range(0..ties) == 0 {
                        best = s;
                    }
                }
            }
            self.local[best] += 1;
            out.push(ServerId::new(best));
        }
        out
    }
}

struct LegacyArgminFactory {
    expected_delay: bool,
}

impl PolicyFactory for LegacyArgminFactory {
    fn name(&self) -> &str {
        if self.expected_delay {
            "SED(legacy)"
        } else {
            "JSQ(legacy)"
        }
    }
    fn build(&self, _dispatcher: DispatcherId, _spec: &ClusterSpec) -> BoxedPolicy {
        Box::new(LegacyArgminPolicy {
            expected_delay: self.expected_delay,
            local: Vec::new(),
        })
    }
}

/// Faithful reimplementation of the pre-refactor round loop (see the module
/// docs for the list of per-round costs it deliberately keeps). It collects
/// the same statistics the real engine does — queue tracker, response-time
/// histogram, dispatch/completion counters — so the comparison isolates the
/// implementation, not the workload.
fn run_legacy_engine(config: &SimConfig, factory: &dyn PolicyFactory) -> u64 {
    const ARRIVAL_STREAM_TAG: u64 = 0x41_52_52_49_56_41_4C_53;
    const SERVICE_STREAM_TAG: u64 = 0x53_45_52_56_49_43_45_53;
    const POLICY_STREAM_TAG: u64 = 0x50_4F_4C_49_43_59_00_00;

    let spec = &config.spec;
    let n = spec.num_servers();
    let m = config.num_dispatchers;
    let rates = spec.rates();

    let mut arrival_rng = StdRng::seed_from_u64(config.seed ^ ARRIVAL_STREAM_TAG);
    let mut service_rng = StdRng::seed_from_u64(config.seed ^ SERVICE_STREAM_TAG);
    let mut policy_rngs: Vec<StdRng> = (0..m)
        .map(|d| StdRng::seed_from_u64(config.seed ^ POLICY_STREAM_TAG ^ ((d as u64) << 32)))
        .collect();

    // Pre-refactor samplers: O(λ) Knuth Poisson per dispatcher per round,
    // geometric draws recomputing ln(1-p) every time.
    let lambdas = config
        .arrivals
        .per_dispatcher_rates(m, spec.total_rate())
        .expect("benchmark arrival spec is valid");
    let arrival_dists: Vec<Option<Poisson>> = lambdas
        .iter()
        .map(|&l| (l > 0.0).then(|| Poisson::new(l).expect("positive rate")))
        .collect();
    let legacy_geometric = |mu: f64, rng: &mut StdRng| -> u64 {
        let p = 1.0 / (1.0 + mu);
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let draws = (u.ln() / (1.0 - p).ln()).floor();
        if draws < 0.0 {
            0
        } else {
            draws as u64
        }
    };

    let mut policies: Vec<_> = (0..m)
        .map(|d| factory.build(DispatcherId::new(d), spec))
        .collect();

    let mut queues: Vec<VecDeque<u64>> = vec![VecDeque::new(); n];
    let mut queue_lengths: Vec<u64> = vec![0; n];
    let mut response_times = ResponseTimeHistogram::new();
    let mut tracker = QueueLengthTracker::new(n);
    let mut jobs_dispatched = 0u64;
    let mut jobs_completed = 0u64;
    let warmup = config.warmup_rounds;

    for round in 0..config.rounds {
        let measured_round = round >= warmup;
        let snapshot = queue_lengths.clone();
        if measured_round {
            tracker.observe(&snapshot);
        }
        let ctx = DispatchContext::new(&snapshot, rates, m, round);

        let arrivals: Vec<u64> = arrival_dists
            .iter()
            .map(|dist| {
                dist.as_ref()
                    .map_or(0, |dist| dist.sample_knuth(&mut arrival_rng) as u64)
            })
            .collect();

        for d in 0..m {
            policies[d].observe_round(&ctx, &mut policy_rngs[d]);
        }
        for d in 0..m {
            let batch = arrivals[d] as usize;
            if batch == 0 {
                continue;
            }
            let assignment = policies[d].dispatch_batch(&ctx, batch, &mut policy_rngs[d]);
            validate_assignment(&assignment, batch, n).expect("policies are well-behaved");
            for server in assignment {
                queues[server.index()].push_back(round);
                queue_lengths[server.index()] += 1;
            }
            if measured_round {
                jobs_dispatched += batch as u64;
            }
        }

        for s in 0..n {
            let capacity = legacy_geometric(rates[s], &mut service_rng);
            let completions = capacity.min(queue_lengths[s]);
            for _ in 0..completions {
                let arrival_round = queues[s].pop_front().expect("bookkeeping is consistent");
                queue_lengths[s] -= 1;
                if arrival_round >= warmup {
                    response_times.record(round - arrival_round + 1);
                    jobs_completed += 1;
                }
            }
        }
    }
    std::hint::black_box(jobs_dispatched);
    std::hint::black_box(tracker.mean_total_backlog());
    std::hint::black_box(response_times.count());
    jobs_completed
}

/// Best-of-N rounds/second for a pair of closures that each simulate
/// `total_rounds` rounds. The two candidates are measured in strict
/// alternation (A, B, A, B, ...) so that drifting machine load hits both
/// equally; the minimum elapsed time per candidate estimates its unloaded
/// cost.
fn measure_pair(
    total_rounds: u64,
    mut baseline: impl FnMut() -> u64,
    mut optimized: impl FnMut() -> u64,
) -> (f64, f64) {
    // One untimed warm-up run each.
    let mut checksum = baseline();
    checksum = checksum.wrapping_add(optimized());
    let mut best_baseline = f64::INFINITY;
    let mut best_optimized = f64::INFINITY;
    for _ in 0..repetitions() {
        let start = Instant::now();
        checksum = checksum.wrapping_add(baseline());
        best_baseline = best_baseline.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        checksum = checksum.wrapping_add(optimized());
        best_optimized = best_optimized.min(start.elapsed().as_secs_f64());
    }
    std::hint::black_box(checksum);
    (
        total_rounds as f64 / best_baseline,
        total_rounds as f64 / best_optimized,
    )
}

struct PolicyResult {
    policy: &'static str,
    baseline: f64,
    optimized: f64,
}

/// Which engine runs a row's baseline factory.
enum BaselineEngine {
    /// The faithful pre-refactor round loop (`run_legacy_engine`).
    LegacyLoop,
    /// The modern engine — used where the baseline is a *policy path* (the
    /// PR 2 per-batch-rebuild LSQ/LED), not an engine generation.
    Modern,
    /// The modern engine with round-to-round delta tracking disabled — the
    /// PR 4-faithful round loop (full cache refresh, no dirty sets). Used
    /// where the baseline is the PR 4 cold-solve decision path.
    ModernNoDeltas,
}

/// The SWEEP row's grid: `SWEEP_REPEATS` consecutive fan-outs over
/// `SWEEP_CELLS` small simulations of `SWEEP_CELL_ROUNDS` rounds each —
/// the many-small-cells shape where per-call thread startup dominates the
/// scoped implementation.
const SWEEP_CELLS: usize = 12;
const SWEEP_CELL_ROUNDS: u64 = 30;
const SWEEP_REPEATS: usize = 60;
const SWEEP_THREADS: usize = 4;

fn sweep_cell_config(cell: usize) -> SimConfig {
    let mut cluster_rng = StdRng::seed_from_u64(SEED ^ cell as u64);
    let spec = RateProfile::paper_moderate()
        .materialize(20, &mut cluster_rng)
        .expect("valid profile");
    SimConfig {
        spec,
        num_dispatchers: 4,
        rounds: SWEEP_CELL_ROUNDS,
        warmup_rounds: 0,
        seed: SEED.wrapping_add(cell as u64),
        arrivals: ArrivalSpec::PoissonOfferedLoad {
            offered_load: OFFERED_LOAD,
        },
        services: ServiceModel::Geometric,
        measure_decision_times: false,
        histogram_metrics: false,
        scenario: scd_sim::ScenarioSpec::default(),
        workload: scd_sim::WorkloadSpec::default(),
    }
}

/// One SWEEP measurement: repeated small fan-outs, pooled or scoped.
fn run_sweep(pooled: bool) -> u64 {
    let configs: Vec<SimConfig> = (0..SWEEP_CELLS).map(sweep_cell_config).collect();
    let factory = JsqFactory::new();
    let worker = |cell: usize| {
        Simulation::new(configs[cell].clone())
            .expect("valid configuration")
            .run(&factory)
            .expect("clean run")
            .jobs_completed
    };
    let mut checksum = 0u64;
    for _ in 0..SWEEP_REPEATS {
        let outputs = if pooled {
            fan_out(SWEEP_CELLS, SWEEP_THREADS, worker)
        } else {
            fan_out_scoped(SWEEP_CELLS, SWEEP_THREADS, worker)
        };
        checksum = checksum.wrapping_add(outputs.iter().sum::<u64>());
    }
    checksum
}

/// The IWL row's trajectory: `IWL_ROUNDS` rounds, each mutating
/// `IWL_DIRTY_PER_ROUND` of the `SERVERS` queues (an engine-style dirty
/// set), re-deriving the sorted-by-load order either cold (full sort) or
/// incrementally (`LoadOrder::repair`), then running Algorithm 3 proper
/// over it.
const IWL_ROUNDS: u64 = 40_000;
const IWL_DIRTY_PER_ROUND: usize = 6;

fn run_iwl_bench(incremental: bool) -> u64 {
    use scd_core::iwl::{compute_iwl_with_order, sorted_by_load_into, LoadOrder};
    let mut cluster_rng = StdRng::seed_from_u64(SEED);
    let spec = RateProfile::paper_moderate()
        .materialize(SERVERS, &mut cluster_rng)
        .expect("valid profile");
    let rates = spec.rates().to_vec();
    let mut queues: Vec<u64> = (0..SERVERS as u64).map(|s| (s * 7) % 20).collect();
    let mut drift_rng = StdRng::seed_from_u64(SEED ^ 0x1D1);
    let mut order = LoadOrder::new();
    order.rebuild(&queues, &rates);
    let mut scratch: Vec<usize> = Vec::new();
    let mut dirty: Vec<u32> = Vec::new();
    let mut checksum = 0u64;
    for round in 0..IWL_ROUNDS {
        dirty.clear();
        for _ in 0..IWL_DIRTY_PER_ROUND {
            let s = drift_rng.gen_range(0..SERVERS);
            queues[s] = drift_rng.gen_range(0..25u64);
            dirty.push(s as u32);
        }
        let arrivals = (round % 50) as f64;
        let iwl = if incremental {
            order.repair(&queues, &rates, &dirty);
            compute_iwl_with_order(&queues, &rates, arrivals, order.order())
        } else {
            sorted_by_load_into(&queues, &rates, &mut scratch);
            compute_iwl_with_order(&queues, &rates, arrivals, &scratch)
        };
        checksum = checksum.wrapping_add(iwl.to_bits());
    }
    checksum
}

fn main() {
    let config = bench_config();
    println!(
        "engine throughput: {SERVERS} servers, {DISPATCHERS} dispatchers, load {OFFERED_LOAD}, \
         {ROUNDS} rounds, best of {}",
        repetitions()
    );

    let mut results: Vec<PolicyResult> = Vec::new();

    type Pair = (
        &'static str,
        Box<dyn PolicyFactory>,
        Box<dyn PolicyFactory>,
        BaselineEngine,
    );
    let pairs: Vec<Pair> = vec![
        (
            // The PR 5 headline row: warm-started (verified) solver + engine
            // dirty sets against the PR 4 cold-solve path on the modern
            // engine (deltas off, cold trimming every solve).
            "SCD",
            Box::new(ScdFactory::new().cold_solve()),
            Box::new(ScdFactory::new()),
            BaselineEngine::ModernNoDeltas,
        ),
        (
            "JSQ",
            Box::new(LegacyArgminFactory {
                expected_delay: false,
            }),
            Box::new(JsqFactory::new()),
            BaselineEngine::LegacyLoop,
        ),
        (
            "SED",
            Box::new(LegacyArgminFactory {
                expected_delay: true,
            }),
            Box::new(SedFactory::new()),
            BaselineEngine::LegacyLoop,
        ),
        (
            "LSQ",
            Box::new(LsqFactory::new().per_batch_rebuild()),
            Box::new(LsqFactory::new()),
            BaselineEngine::Modern,
        ),
        (
            "LED",
            Box::new(LedFactory::new().per_batch_rebuild()),
            Box::new(LedFactory::new()),
            BaselineEngine::Modern,
        ),
        (
            "WR",
            Box::new(WeightedRandomFactory::new()),
            Box::new(WeightedRandomFactory::new()),
            BaselineEngine::LegacyLoop,
        ),
    ];

    for (policy, baseline_factory, optimized_factory, baseline_engine) in pairs {
        let simulation = Simulation::new(config.clone()).expect("valid configuration");
        let no_delta_simulation = Simulation::new(config.clone())
            .expect("valid configuration")
            .with_delta_rounds(false);
        let run_baseline = || match baseline_engine {
            BaselineEngine::LegacyLoop => run_legacy_engine(&config, baseline_factory.as_ref()),
            BaselineEngine::Modern => {
                simulation
                    .run(baseline_factory.as_ref())
                    .expect("clean run")
                    .jobs_completed
            }
            BaselineEngine::ModernNoDeltas => {
                no_delta_simulation
                    .run(baseline_factory.as_ref())
                    .expect("clean run")
                    .jobs_completed
            }
        };
        let (baseline, optimized) = measure_pair(ROUNDS, run_baseline, || {
            simulation
                .run(optimized_factory.as_ref())
                .expect("clean run")
                .jobs_completed
        });
        println!(
            "  {policy:<5} baseline {baseline:>12.0} rounds/s | optimized {optimized:>12.0} \
             rounds/s | speedup {:.2}x",
            optimized / baseline
        );
        results.push(PolicyResult {
            policy,
            baseline,
            optimized,
        });
    }

    // The many-small-cells sweep: scoped threads (baseline) vs the
    // persistent pool (optimized), identical outputs.
    let sweep_rounds = (SWEEP_CELLS * SWEEP_REPEATS) as u64 * SWEEP_CELL_ROUNDS;
    let (baseline, optimized) = measure_pair(sweep_rounds, || run_sweep(false), || run_sweep(true));
    println!(
        "  SWEEP baseline {baseline:>12.0} rounds/s | optimized {optimized:>12.0} rounds/s | \
         speedup {:.2}x  ({SWEEP_REPEATS}x{SWEEP_CELLS} cells, {SWEEP_CELL_ROUNDS} rounds, \
         {SWEEP_THREADS} threads)",
        optimized / baseline
    );
    results.push(PolicyResult {
        policy: "SWEEP",
        baseline,
        optimized,
    });

    // The incremental load order: per-round full sort (allocation-free
    // `sorted_by_load_into`) vs `LoadOrder::repair` over the engine-style
    // dirty set, on identical drifting queue trajectories; both paths feed
    // Algorithm 3 proper and must produce identical IWL bits.
    let (baseline, optimized) =
        measure_pair(IWL_ROUNDS, || run_iwl_bench(false), || run_iwl_bench(true));
    println!(
        "  IWL   baseline {baseline:>12.0} rounds/s | optimized {optimized:>12.0} rounds/s | \
         speedup {:.2}x  (full sort vs dirty-set repair, {IWL_DIRTY_PER_ROUND} dirty of \
         {SERVERS} per round)",
        optimized / baseline
    );
    results.push(PolicyResult {
        policy: "IWL",
        baseline,
        optimized,
    });

    // The sharded engine: one shard (bit-identical to the unsharded round
    // loop, run sequentially) vs a 4-way striped split of servers and
    // dispatchers fanned out on the worker pool.
    const SHARDS: usize = 4;
    let single = ShardedSimulation::new(config.clone(), 1).expect("valid configuration");
    let split = ShardedSimulation::new(config.clone(), SHARDS).expect("valid configuration");
    let shard_factory = ScdFactory::new();
    let (baseline, optimized) = measure_pair(
        ROUNDS,
        || {
            single
                .run(&shard_factory)
                .expect("clean run")
                .jobs_completed
        },
        || {
            split
                .run_parallel(&shard_factory, SHARDS)
                .expect("clean run")
                .jobs_completed
        },
    );
    println!(
        "  SHARD baseline {baseline:>12.0} rounds/s | optimized {optimized:>12.0} rounds/s | \
         speedup {:.2}x  (k=1 sequential vs k={SHARDS} on the pool, SCD)",
        optimized / baseline
    );
    results.push(PolicyResult {
        policy: "SHARD",
        baseline,
        optimized,
    });

    // The mean-field scale row: SCD on a 10⁴-server **bimodal** cluster
    // (two rate classes — the shape the class-compressed sampler targets;
    // a continuous rate profile would make every server its own class and
    // disable compression). Baseline is the dense per-server
    // fill/normalize/alias dispatch chain (`classic_sampler`, the PR 8
    // path); optimized is the default compressed kernel. Same engine, same
    // grouped-trimming solver — the row isolates the sampler
    // representation, which is the per-round O(n) → O(C) term at scale.
    const SCALE_SERVERS: usize = 10_000;
    const SCALE_ROUNDS: u64 = 200;
    let mut scale_rates = vec![1.0; SCALE_SERVERS / 2];
    scale_rates.resize(SCALE_SERVERS, 4.0);
    let scale_config = SimConfig {
        spec: ClusterSpec::from_rates(scale_rates).expect("valid rates"),
        num_dispatchers: DISPATCHERS,
        rounds: SCALE_ROUNDS,
        warmup_rounds: 0,
        seed: SEED,
        arrivals: ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 },
        services: ServiceModel::Geometric,
        measure_decision_times: false,
        histogram_metrics: true,
        scenario: scd_sim::ScenarioSpec::default(),
        workload: scd_sim::WorkloadSpec::default(),
    };
    let scale_sim = Simulation::new(scale_config).expect("valid configuration");
    let dense = ScdFactory::new().classic_sampler();
    let compressed = ScdFactory::new();
    let (baseline, optimized) = measure_pair(
        SCALE_ROUNDS,
        || scale_sim.run(&dense).expect("clean run").jobs_completed,
        || {
            scale_sim
                .run(&compressed)
                .expect("clean run")
                .jobs_completed
        },
    );
    println!(
        "  SCD@10K baseline {baseline:>10.0} rounds/s | optimized {optimized:>12.0} rounds/s | \
         speedup {:.2}x  (dense per-server sampler vs compressed classes, {SCALE_SERVERS} \
         servers bimodal, load 0.9)",
        optimized / baseline
    );
    results.push(PolicyResult {
        policy: "SCD@10K",
        baseline,
        optimized,
    });

    if std::env::var_os("CRITERION_QUICK").is_some() {
        println!("CRITERION_QUICK set: smoke run, not recording BENCH_engine.json");
        return;
    }

    let mut rows = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "        {{\"policy\": \"{}\", \"baseline_rounds_per_sec\": {:.1}, \
             \"optimized_rounds_per_sec\": {:.1}, \"speedup\": {:.3}}}",
            r.policy,
            r.baseline,
            r.optimized,
            r.optimized / r.baseline
        ));
    }
    let new_run = format!(
        "    {{\n      \"label\": \"{RUN_LABEL}\",\n      \"config\": {{\"servers\": {SERVERS}, \
         \"dispatchers\": {DISPATCHERS}, \"offered_load\": {OFFERED_LOAD}, \"rounds\": {ROUNDS}, \
         \"seed\": {SEED}, \"rate_profile\": \"U[1,10]\", \"services\": \"geometric\"}},\n      \
         \"repetitions\": {reps},\n      \"results\": [\n{rows}\n      ]\n    }}",
        reps = repetitions()
    );

    // Append to the recorded run history (`runs` array), replacing any
    // earlier recording with this run's label so re-runs do not pile up.
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let previous_runs = std::fs::read_to_string(out_path).ok().and_then(|existing| {
        let start = existing.find("\"runs\": [\n")? + "\"runs\": [\n".len();
        let end = existing.rfind("\n  ]")?;
        let mut inner = existing[start..end].to_string();
        if let Some(stale) = inner.find(&format!("\"label\": \"{RUN_LABEL}\"")) {
            // Drop the run object holding the stale label (it starts at the
            // "    {" preceding the label) and everything after it.
            let object_start = inner[..stale].rfind("    {")?;
            inner.truncate(object_start);
            let trimmed = inner.trim_end().trim_end_matches(',').to_string();
            inner = trimmed;
        }
        let inner = inner.trim_end().to_string();
        (!inner.is_empty()).then_some(inner)
    });
    let runs = match previous_runs {
        Some(previous) => format!("{previous},\n{new_run}"),
        None => new_run,
    };
    let json = format!(
        "{{\n  \"benchmark\": \"engine_throughput\",\n  \"unit\": \"rounds_per_sec\",\n  \
         \"runs\": [\n{runs}\n  ]\n}}\n"
    );
    std::fs::write(out_path, &json).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}
