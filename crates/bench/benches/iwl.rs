//! Benchmarks for the ideal-workload computation (Algorithm 3): the
//! `O(n log n)` sort-then-scan path versus the `O(n)` pre-sorted path
//! referenced in Section 5 of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scd_bench::bench_instance;
use scd_core::iwl::{compute_iwl, compute_iwl_with_order, sorted_by_load};
use std::hint::black_box;
use std::time::Duration;

fn bench_iwl(c: &mut Criterion) {
    let mut group = c.benchmark_group("iwl");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &n in &[100usize, 200, 400, 1000] {
        let (queues, rates) = bench_instance(n, 1.0, 10.0, 42);
        let arrivals = rates.iter().sum::<f64>() * 0.99;
        group.bench_with_input(BenchmarkId::new("sorting", n), &n, |b, _| {
            b.iter(|| compute_iwl(black_box(&queues), black_box(&rates), black_box(arrivals)))
        });
        let order = sorted_by_load(&queues, &rates);
        group.bench_with_input(BenchmarkId::new("presorted", n), &n, |b, _| {
            b.iter(|| {
                compute_iwl_with_order(
                    black_box(&queues),
                    black_box(&rates),
                    black_box(arrivals),
                    black_box(&order),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_iwl);
criterion_main!(benches);
