//! Ablation bench: alias-method sampling (O(1) per draw) versus inverse-CDF
//! binary-search sampling (O(log n) per draw) for drawing job destinations
//! from a freshly computed probability vector.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scd_bench::bench_instance;
use scd_core::iwl::compute_iwl;
use scd_core::solver::{compute_probabilities_fast, ScdSolution};
use scd_model::{AliasSampler, CdfSampler};
use std::hint::black_box;
use std::time::Duration;

fn probabilities_for(n: usize) -> Vec<f64> {
    let (queues, rates) = bench_instance(n, 1.0, 10.0, 11);
    let arrivals = rates.iter().sum::<f64>() * 0.99 / 10.0;
    let iwl = compute_iwl(&queues, &rates, arrivals);
    let ScdSolution { probabilities, .. } =
        compute_probabilities_fast(&queues, &rates, arrivals, iwl).expect("valid instance");
    probabilities
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &n in &[100usize, 1000] {
        let probabilities = probabilities_for(n);
        let draws = 64usize;

        group.bench_with_input(BenchmarkId::new("alias_build_and_draw", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let sampler = AliasSampler::new(black_box(&probabilities)).unwrap();
                let mut acc = 0usize;
                for _ in 0..draws {
                    acc += sampler.sample(&mut rng);
                }
                black_box(acc)
            })
        });

        group.bench_with_input(BenchmarkId::new("cdf_build_and_draw", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let sampler = CdfSampler::new(black_box(&probabilities)).unwrap();
                let mut acc = 0usize;
                for _ in 0..draws {
                    acc += sampler.sample(&mut rng);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
