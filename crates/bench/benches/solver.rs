//! Benchmarks for the probability solvers: Algorithm 4 (`O(n log n)`),
//! Algorithm 1 (`O(n²)`) and the exhaustive reference (`O(2ⁿ)`, tiny n only).
//! This is the algorithmic core behind Figures 5 and 8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scd_bench::bench_instance;
use scd_core::iwl::compute_iwl;
use scd_core::qp::exhaustive_solution;
use scd_core::solver::{
    compute_probabilities_fast, compute_probabilities_fast_with_order,
    compute_probabilities_quadratic, sorted_by_key,
};
use std::hint::black_box;
use std::time::Duration;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &n in &[100usize, 200, 400] {
        let (queues, rates) = bench_instance(n, 1.0, 10.0, 7);
        let arrivals = rates.iter().sum::<f64>() * 0.99 / 10.0;
        let iwl = compute_iwl(&queues, &rates, arrivals);

        group.bench_with_input(BenchmarkId::new("algorithm4", n), &n, |b, _| {
            b.iter(|| {
                compute_probabilities_fast(
                    black_box(&queues),
                    black_box(&rates),
                    black_box(arrivals),
                    black_box(iwl),
                )
                .unwrap()
            })
        });
        let order = sorted_by_key(&queues, &rates);
        group.bench_with_input(BenchmarkId::new("algorithm4_presorted", n), &n, |b, _| {
            b.iter(|| {
                compute_probabilities_fast_with_order(
                    black_box(&queues),
                    black_box(&rates),
                    black_box(arrivals),
                    black_box(iwl),
                    black_box(&order),
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &n, |b, _| {
            b.iter(|| {
                compute_probabilities_quadratic(
                    black_box(&queues),
                    black_box(&rates),
                    black_box(arrivals),
                    black_box(iwl),
                )
                .unwrap()
            })
        });
    }

    // The exhaustive active-set search only makes sense for tiny clusters.
    let (queues, rates) = bench_instance(12, 1.0, 10.0, 7);
    let arrivals = 24.0;
    let iwl = compute_iwl(&queues, &rates, arrivals);
    group.bench_function("exhaustive_n12", |b| {
        b.iter(|| {
            exhaustive_solution(
                black_box(&queues),
                black_box(&rates),
                black_box(arrivals),
                black_box(iwl),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
