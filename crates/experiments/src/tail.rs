//! Response-time tail experiments (Figures 3b, 4b, 6b, 7b).
//!
//! For a fixed `(n, m)` system and a few offered loads, the paper plots the
//! complementary cumulative distribution function (CCDF) of the response
//! time down to 1e-8. This module reproduces the underlying series: it
//! collects the exact response-time histogram per policy and reports both a
//! percentile summary table and (optionally) the full CCDF as CSV.

use crate::output::OutputSink;
use crate::response::{cluster_for_system, replication_seed};
use crate::sweep::SweepGrid;
use scd_metrics::{ResponseTimeHistogram, Table};
use scd_model::RateProfile;
use scd_policies::factory_by_name;
use scd_sim::{ArrivalSpec, ServiceModel, SimConfig, Simulation};
use std::io;

/// Configuration of a response-time-tail experiment.
#[derive(Debug, Clone)]
pub struct TailExperiment {
    /// Heterogeneity profile used to draw the cluster.
    pub profile: RateProfile,
    /// Policy names (must exist in the registry).
    pub policies: Vec<String>,
    /// The `(n, m)` system (the paper uses n=100, m=10).
    pub system: (usize, usize),
    /// Offered loads (the paper uses 0.70, 0.90, 0.99).
    pub loads: Vec<f64>,
    /// Rounds per run.
    pub rounds: u64,
    /// Warm-up rounds excluded from statistics.
    pub warmup: u64,
    /// Master seed.
    pub seed: u64,
    /// Statistically independent replications per `(load, policy)` cell;
    /// their histograms are **merged**, which deepens the resolvable CCDF
    /// tail (the paper plots down to 1e-8). `0` and `1` both mean a single
    /// run, identical to the pre-replication harness.
    pub replications: usize,
}

/// The tail distributions of every policy at one offered load.
#[derive(Debug, Clone)]
pub struct TailResult {
    /// The offered load.
    pub load: f64,
    /// `(policy name, response-time histogram)` pairs.
    pub histograms: Vec<(String, ResponseTimeHistogram)>,
}

impl TailResult {
    /// The histogram of one policy.
    pub fn histogram(&self, policy: &str) -> Option<&ResponseTimeHistogram> {
        self.histograms
            .iter()
            .find(|(name, _)| name == policy)
            .map(|(_, h)| h)
    }
}

impl TailExperiment {
    /// Runs the experiment with up to `threads` parallel workers.
    ///
    /// # Panics
    /// Panics on unregistered policy names (a harness bug).
    pub fn run(&self, threads: usize) -> Vec<TailResult> {
        let (n, m) = self.system;
        let cluster = cluster_for_system(&self.profile, n, self.seed, 0);

        // (1 × loads × policies × replications) grid on the shared pool.
        let grid = SweepGrid::new(1, self.loads.len(), self.policies.len())
            .with_seeds(self.replications.max(1));
        let histograms = grid.run(threads, |pt| {
            let config = SimConfig {
                spec: cluster.clone(),
                num_dispatchers: m,
                rounds: self.rounds,
                warmup_rounds: self.warmup,
                seed: replication_seed(self.seed, 0, pt.load, pt.seed),
                arrivals: ArrivalSpec::PoissonOfferedLoad {
                    offered_load: self.loads[pt.load],
                },
                services: ServiceModel::Geometric,
                measure_decision_times: false,
                histogram_metrics: false,
                scenario: scd_sim::ScenarioSpec::default(),
                workload: scd_sim::WorkloadSpec::default(),
            };
            let factory = factory_by_name(&self.policies[pt.policy])
                .unwrap_or_else(|| panic!("unknown policy {}", self.policies[pt.policy]));
            Simulation::new(config)
                .expect("experiment configurations are valid")
                .run(factory.as_ref())
                .expect("registered policies never violate the protocol")
                .response_times
        });

        let mut results: Vec<TailResult> = self
            .loads
            .iter()
            .map(|&load| TailResult {
                load,
                histograms: Vec::new(),
            })
            .collect();
        // Seeds are the innermost grid dimension, so replication 0 of a
        // (load, policy) cell arrives first and later replications merge
        // into the entry it pushed.
        for (index, histogram) in histograms.into_iter().enumerate() {
            let pt = grid.point(index);
            let cell = &mut results[pt.load].histograms;
            if pt.seed == 0 {
                cell.push((self.policies[pt.policy].clone(), histogram));
            } else {
                cell.last_mut()
                    .expect("replication 0 pushed this cell first")
                    .1
                    .merge(&histogram);
            }
        }
        results
    }

    /// Prints a percentile summary per load and, when CSV output is enabled,
    /// the full CCDF series per load.
    ///
    /// # Errors
    /// Propagates output I/O failures.
    pub fn emit(&self, results: &[TailResult], label: &str, sink: &OutputSink) -> io::Result<()> {
        let (n, m) = self.system;
        for result in results {
            let mut table = Table::with_headers(&[
                "policy", "mean", "p50", "p90", "p99", "p99.9", "p99.99", "max",
            ]);
            for (policy, histogram) in &result.histograms {
                table.add_row(vec![
                    policy.clone(),
                    format!("{:.3}", histogram.mean()),
                    histogram.percentile(0.50).to_string(),
                    histogram.percentile(0.90).to_string(),
                    histogram.percentile(0.99).to_string(),
                    histogram.percentile(0.999).to_string(),
                    histogram.percentile(0.9999).to_string(),
                    histogram.max().to_string(),
                ]);
            }
            sink.emit_table(
                &format!(
                    "{label}: response-time tail [n={n}, m={m}, rho={:.2}]",
                    result.load
                ),
                &format!(
                    "{label}_tail_rho{:03}",
                    (result.load * 100.0).round() as u32
                ),
                &table,
            )?;

            // Full CCDF series (one row per (policy, response time) pair).
            if sink.writes_csv() {
                let mut ccdf_table = Table::with_headers(&["policy", "response_time", "ccdf"]);
                for (policy, histogram) in &result.histograms {
                    for (rt, tail) in histogram.ccdf() {
                        ccdf_table.add_row(vec![
                            policy.clone(),
                            rt.to_string(),
                            format!("{tail:.8}"),
                        ]);
                    }
                }
                sink.emit_table(
                    &format!("{label}: CCDF series [rho={:.2}]", result.load),
                    &format!(
                        "{label}_ccdf_rho{:03}",
                        (result.load * 100.0).round() as u32
                    ),
                    &ccdf_table,
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_experiment() -> TailExperiment {
        TailExperiment {
            profile: RateProfile::paper_moderate(),
            policies: vec!["SCD".into(), "SED".into()],
            system: (10, 3),
            loads: vec![0.9],
            rounds: 400,
            warmup: 50,
            seed: 3,
            replications: 1,
        }
    }

    #[test]
    fn replications_merge_histograms_and_stay_deterministic() {
        let mut experiment = tiny_experiment();
        experiment.replications = 3;
        let a = experiment.run(1);
        let b = experiment.run(8);
        assert_eq!(
            a[0].histogram("SCD").unwrap(),
            b[0].histogram("SCD").unwrap(),
            "replicated tails must be bit-identical across thread counts"
        );
        // Three replications → roughly three times the single-run mass.
        let single = tiny_experiment().run(1);
        let merged_count = a[0].histogram("SCD").unwrap().count();
        let single_count = single[0].histogram("SCD").unwrap().count();
        assert!(
            merged_count > 2 * single_count,
            "merged {merged_count} vs single {single_count}"
        );
    }

    #[test]
    fn collects_one_histogram_per_policy_and_load() {
        let experiment = tiny_experiment();
        let results = experiment.run(2);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].histograms.len(), 2);
        assert!(results[0].histogram("SCD").unwrap().count() > 0);
        assert!(results[0].histogram("SED").unwrap().count() > 0);
        assert!(results[0].histogram("none").is_none());
    }

    #[test]
    fn identical_arrival_streams_across_policies() {
        // Both policies must have seen the same number of completed-or-queued
        // jobs; completion counts can differ, but the histograms cannot be
        // empty and their counts must be within the dispatched total.
        let experiment = tiny_experiment();
        let results = experiment.run(1);
        let scd = results[0].histogram("SCD").unwrap().count();
        let sed = results[0].histogram("SED").unwrap().count();
        // The two counts differ only by censored (still-queued) jobs, which is
        // a small fraction of the total at this load.
        let diff = scd.abs_diff(sed) as f64 / scd.max(sed) as f64;
        assert!(diff < 0.2, "counts diverge too much: {scd} vs {sed}");
    }

    #[test]
    fn emit_prints_summaries() {
        let experiment = tiny_experiment();
        let results = experiment.run(2);
        experiment
            .emit(&results, "test", &OutputSink::stdout_only())
            .unwrap();
    }
}
