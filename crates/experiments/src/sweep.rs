//! The unified parallel sweep executor.
//!
//! Figure reproductions are embarrassingly parallel over
//! `(system × load × policy × seed)` tuples. Instead of every experiment
//! hand-rolling its own job list and scatter logic, [`SweepGrid`] enumerates
//! the full cross-product in a fixed row-major order and fans the cells out
//! over [`scd_sim::fan_out`] — the same persistent work-stealing pool that
//! backs `run_comparison_parallel` and `run_replications` — so experiment
//! grids ride one pool end-to-end rather than each layer spawning its own.
//!
//! Determinism: the grid only distributes *indices*; every cell derives its
//! RNG streams from the experiment seed and its own coordinates. Results
//! come back in row-major input order regardless of the thread count, so a
//! parallel sweep is bit-identical to a sequential one (asserted by this
//! module's tests and the experiment-level determinism tests).

/// One cell of a sweep grid, identified by its coordinate indices.
///
/// The indices point into the experiment's own dimension vectors (systems,
/// offered loads, policies, replication seeds); a dimension an experiment
/// does not sweep simply has size 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridPoint {
    /// Index into the systems dimension (cluster sizes for runtime sweeps).
    pub system: usize,
    /// Index into the offered-loads dimension.
    pub load: usize,
    /// Index into the policies dimension (estimator variants for ablations).
    pub policy: usize,
    /// Index into the seeds/replications dimension.
    pub seed: usize,
}

/// A `(system × load × policy × seed)` sweep grid executed on the simulator's
/// persistent worker pool.
///
/// # Example
/// ```
/// use scd_experiments::sweep::SweepGrid;
/// let grid = SweepGrid::new(2, 3, 4); // 2 systems × 3 loads × 4 policies
/// assert_eq!(grid.len(), 24);
/// let cells = grid.run(8, |pt| (pt.system, pt.load, pt.policy));
/// assert_eq!(cells[0], (0, 0, 0));
/// assert_eq!(cells[23], (1, 2, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepGrid {
    systems: usize,
    loads: usize,
    policies: usize,
    seeds: usize,
}

impl SweepGrid {
    /// A grid over systems × loads × policies with a single seed per cell.
    pub fn new(systems: usize, loads: usize, policies: usize) -> Self {
        SweepGrid {
            systems,
            loads,
            policies,
            seeds: 1,
        }
    }

    /// Adds a replication (seed) dimension of the given size.
    pub fn with_seeds(mut self, seeds: usize) -> Self {
        self.seeds = seeds;
        self
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.systems * self.loads * self.policies * self.seeds
    }

    /// True when any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The number of replication seeds per cell.
    pub fn seeds(&self) -> usize {
        self.seeds
    }

    /// The coordinates of the `index`-th cell in row-major order
    /// (system-major, then load, then policy, then seed).
    ///
    /// # Panics
    /// Panics if `index >= len()`.
    pub fn point(&self, index: usize) -> GridPoint {
        assert!(
            index < self.len(),
            "cell {index} out of range {}",
            self.len()
        );
        let seed = index % self.seeds;
        let rest = index / self.seeds;
        let policy = rest % self.policies;
        let rest = rest / self.policies;
        let load = rest % self.loads;
        let system = rest / self.loads;
        GridPoint {
            system,
            load,
            policy,
            seed,
        }
    }

    /// Runs `worker` on every cell with up to `threads` OS threads and
    /// returns the outputs in row-major cell order (independent of the
    /// thread count). A `threads` value of 0 or 1 runs on the calling
    /// thread.
    pub fn run<R, F>(&self, threads: usize, worker: F) -> Vec<R>
    where
        R: Send,
        F: Fn(GridPoint) -> R + Send + Sync,
    {
        scd_sim::fan_out(self.len(), threads, |index| worker(self.point(index)))
    }
}

/// Runs `worker` on every item of `inputs`, using up to `threads` OS threads,
/// and returns the outputs in input order.
///
/// A `threads` value of 0 or 1 runs everything on the calling thread, which
/// is also the fallback for a single input. (This is the degenerate
/// one-dimensional form of [`SweepGrid::run`]; both ride
/// [`scd_sim::fan_out`].)
pub fn parallel_map<T, R, F>(inputs: Vec<T>, threads: usize, worker: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Send + Sync,
{
    scd_sim::fan_out(inputs.len(), threads, |index| worker(&inputs[index]))
}

/// The number of worker threads to use given an optional user override.
pub fn effective_threads(requested: Option<usize>) -> usize {
    requested.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<u64> = (0..97).collect();
        let outputs = parallel_map(inputs.clone(), 8, |&x| x * x);
        let expected: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(outputs, expected);
    }

    #[test]
    fn single_threaded_path_matches() {
        let inputs: Vec<i32> = (0..10).collect();
        let a = parallel_map(inputs.clone(), 1, |&x| x + 1);
        let b = parallel_map(inputs, 4, |&x| x + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_fine() {
        let outputs: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |&x| x);
        assert!(outputs.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let outputs = parallel_map(vec![1, 2], 64, |&x| x * 10);
        assert_eq!(outputs, vec![10, 20]);
    }

    #[test]
    fn effective_threads_defaults_to_available_parallelism() {
        assert_eq!(effective_threads(Some(3)), 3);
        assert!(effective_threads(None) >= 1);
    }

    #[test]
    fn grid_enumerates_the_full_cross_product_row_major() {
        let grid = SweepGrid::new(2, 3, 2).with_seeds(2);
        assert_eq!(grid.len(), 24);
        assert!(!grid.is_empty());
        assert_eq!(grid.seeds(), 2);
        let mut expected = Vec::new();
        for system in 0..2 {
            for load in 0..3 {
                for policy in 0..2 {
                    for seed in 0..2 {
                        expected.push(GridPoint {
                            system,
                            load,
                            policy,
                            seed,
                        });
                    }
                }
            }
        }
        let points: Vec<GridPoint> = (0..grid.len()).map(|i| grid.point(i)).collect();
        assert_eq!(points, expected);
    }

    #[test]
    fn grid_run_is_thread_count_invariant() {
        let grid = SweepGrid::new(3, 4, 5).with_seeds(2);
        let sequential = grid.run(1, |pt| (pt.system, pt.load, pt.policy, pt.seed));
        for threads in [2usize, 8, 64] {
            assert_eq!(
                sequential,
                grid.run(threads, |pt| (pt.system, pt.load, pt.policy, pt.seed))
            );
        }
    }

    #[test]
    fn empty_grid_runs_to_nothing() {
        let grid = SweepGrid::new(0, 3, 2);
        assert!(grid.is_empty());
        let out: Vec<()> = grid.run(4, |_| ());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cell_panics() {
        SweepGrid::new(1, 1, 1).point(1);
    }
}
