//! A small parallel sweep executor over the simulator's thread fan-out.
//!
//! Figure reproductions are embarrassingly parallel over
//! `(system, offered load, policy)` tuples; this module distributes those
//! runs over a fixed number of worker threads while preserving the input
//! order of the results. The actual work-stealing pool is
//! [`scd_sim::fan_out`] — the same primitive the parallel comparison and
//! replication runners use.

/// Runs `worker` on every item of `inputs`, using up to `threads` OS threads,
/// and returns the outputs in input order.
///
/// A `threads` value of 0 or 1 runs everything on the calling thread, which
/// is also the fallback for a single input.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, threads: usize, worker: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Send + Sync,
{
    scd_sim::fan_out(inputs.len(), threads, |index| worker(&inputs[index]))
}

/// The number of worker threads to use given an optional user override.
pub fn effective_threads(requested: Option<usize>) -> usize {
    requested.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<u64> = (0..97).collect();
        let outputs = parallel_map(inputs.clone(), 8, |&x| x * x);
        let expected: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(outputs, expected);
    }

    #[test]
    fn single_threaded_path_matches() {
        let inputs: Vec<i32> = (0..10).collect();
        let a = parallel_map(inputs.clone(), 1, |&x| x + 1);
        let b = parallel_map(inputs, 4, |&x| x + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_fine() {
        let outputs: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |&x| x);
        assert!(outputs.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let outputs = parallel_map(vec![1, 2], 64, |&x| x * 10);
        assert_eq!(outputs, vec![10, 20]);
    }

    #[test]
    fn effective_threads_defaults_to_available_parallelism() {
        assert_eq!(effective_threads(Some(3)), 3);
        assert!(effective_threads(None) >= 1);
    }
}
