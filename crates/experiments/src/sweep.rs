//! A small parallel sweep executor built on crossbeam's scoped threads.
//!
//! Figure reproductions are embarrassingly parallel over
//! `(system, offered load, policy)` tuples; this module distributes those
//! runs over a fixed number of worker threads while preserving the input
//! order of the results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `worker` on every item of `inputs`, using up to `threads` OS threads,
/// and returns the outputs in input order.
///
/// A `threads` value of 0 or 1 runs everything on the calling thread, which
/// is also the fallback for a single input.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, threads: usize, worker: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Send + Sync,
{
    let count = inputs.len();
    if count == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(count);
    if threads == 1 {
        return inputs.iter().map(|item| worker(item)).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let inputs_ref = &inputs;
    let worker_ref = &worker;
    let next_ref = &next;
    let results_ref = &results;

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move |_| loop {
                let index = next_ref.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let output = worker_ref(&inputs_ref[index]);
                *results_ref[index].lock().expect("no poisoned locks") = Some(output);
            });
        }
    })
    .expect("sweep workers do not panic");

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned locks")
                .expect("every slot was filled")
        })
        .collect()
}

/// The number of worker threads to use given an optional user override.
pub fn effective_threads(requested: Option<usize>) -> usize {
    requested.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<u64> = (0..97).collect();
        let outputs = parallel_map(inputs.clone(), 8, |&x| x * x);
        let expected: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(outputs, expected);
    }

    #[test]
    fn single_threaded_path_matches() {
        let inputs: Vec<i32> = (0..10).collect();
        let a = parallel_map(inputs.clone(), 1, |&x| x + 1);
        let b = parallel_map(inputs, 4, |&x| x + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_fine() {
        let outputs: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |&x| x);
        assert!(outputs.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let outputs = parallel_map(vec![1, 2], 64, |&x| x * 10);
        assert_eq!(outputs, vec![10, 20]);
    }

    #[test]
    fn effective_threads_defaults_to_available_parallelism() {
        assert_eq!(effective_threads(Some(3)), 3);
        assert!(effective_threads(None) >= 1);
    }
}
