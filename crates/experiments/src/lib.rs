//! Figure-reproduction harness for the SCD paper.
//!
//! Every figure in the paper's evaluation (Section 6 and Appendix E) has a
//! corresponding binary in this crate:
//!
//! | Binary | Paper figure | What it prints |
//! |---|---|---|
//! | `fig3` | Fig. 3a/3b | mean response time vs offered load and response-time tails, `µ_s ~ U[1,10]`, competitive policies |
//! | `fig4` | Fig. 4a/4b | same with `µ_s ~ U[1,100]` |
//! | `fig5` | Fig. 5 | per-decision computation-time distribution vs cluster size, `µ_s ~ U[1,10]` |
//! | `fig6` | Fig. 6a/6b | SCD vs the less competitive baselines (JSQ(2), JIQ, LSQ, WR), `µ_s ~ U[1,10]` |
//! | `fig7` | Fig. 7a/7b | same with `µ_s ~ U[1,100]` |
//! | `fig8` | Fig. 8 | computation-time distribution with `µ_s ~ U[1,100]` |
//! | `ablation` | — | estimator and solver ablations called out in DESIGN.md |
//! | `all_figures` | — | runs everything back to back |
//! | `sweep` | — | `(system × load × policy)` comparison grid on the **sharded** round engine (`--shards k`, `--processes k`) |
//! | `shard_worker` | — | one shard of one run, as a supervised OS process (spawned by `orchestrate`, not by hand) |
//! | `orchestrate` | — | fault-tolerant multi-process run: spawns `--processes K` workers, retries crashes from seed, merges survivors |
//!
//! All binaries accept `--rounds N`, `--seed S`, `--loads a,b,c`,
//! `--systems nxm,nxm`, `--paper` (the full 10⁵-round setup of the paper),
//! `--quick` (a smoke-test-sized run), `--csv DIR` (dump the plotted series
//! as CSV), `--threads T` and `--replications R` (independent replications
//! per sweep cell: averaged for mean-response-time sweeps, histogram-merged
//! for tail sweeps; the decision-time and ablation figures note and ignore
//! the flag). The `sweep` binary additionally accepts `--shards K` to run
//! every cell on the sharded round engine (`K = 1` is bit-identical to the
//! unsharded engine) and `--processes K` to run every cell through the
//! supervised multi-process fabric (module [`fabric`]), which is
//! bit-identical to `--shards K` when no worker is lost.
//!
//! All experiments fan their `(system × load × policy × seed)` grids out on
//! the unified [`SweepGrid`] executor (module [`sweep`]), which rides the
//! same persistent worker pool as the simulator's parallel runners; results are
//! bit-identical regardless of the thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod cli;
pub mod fabric;
pub mod figures;
pub mod output;
pub mod response;
pub mod runtime;
pub mod shard_sweep;
pub mod sweep;
pub mod tail;

pub use cli::CliOptions;
pub use figures::{FigureKind, FigureSpec};
pub use sweep::{GridPoint, SweepGrid};
