//! Per-decision computation-time experiments (Figures 5 and 8).
//!
//! The paper measures, for every dispatcher and every round of a live
//! high-load simulation, how long it takes to compute the round's dispatching
//! decision, and plots the distribution (CDF) of those times for SCD (via
//! Algorithm 4 and via Algorithm 1), JSQ and SED at several cluster sizes.
//! We reproduce the same measurement with `std::time::Instant` around each
//! `dispatch_batch` call; absolute numbers depend on the host, but the
//! ordering and scaling behaviour are the claims under test.

use crate::output::OutputSink;
use crate::response::{cluster_for_system, mix_seed};
use crate::sweep::SweepGrid;
use scd_metrics::{DecisionTimeHistogram, Table};
use scd_model::RateProfile;
use scd_policies::factory_by_name;
use scd_sim::{ArrivalSpec, ServiceModel, SimConfig, Simulation};
use std::io;

/// Configuration of a decision-time experiment.
#[derive(Debug, Clone)]
pub struct RuntimeExperiment {
    /// Heterogeneity profile used to draw the clusters.
    pub profile: RateProfile,
    /// Cluster sizes to evaluate (the paper uses 100, 200, 300, 400).
    pub cluster_sizes: Vec<usize>,
    /// Number of dispatchers (the paper uses 10).
    pub dispatchers: usize,
    /// Offered load (the paper uses 0.99).
    pub offered_load: f64,
    /// Policies to time (the paper uses SCD, SCD(alg1), JSQ, SED).
    pub policies: Vec<String>,
    /// Rounds per run (every dispatcher-round with arrivals contributes one
    /// sample).
    pub rounds: u64,
    /// Master seed.
    pub seed: u64,
}

/// Decision-time distributions for every policy at one cluster size.
#[derive(Debug, Clone)]
pub struct RuntimeResult {
    /// Number of servers.
    pub n: usize,
    /// `(policy name, decision-time histogram in microseconds)` pairs.
    pub samples: Vec<(String, DecisionTimeHistogram)>,
}

impl RuntimeResult {
    /// The samples of one policy.
    pub fn samples_for(&self, policy: &str) -> Option<&DecisionTimeHistogram> {
        self.samples
            .iter()
            .find(|(name, _)| name == policy)
            .map(|(_, s)| s)
    }
}

impl RuntimeExperiment {
    /// Runs the experiment with up to `threads` parallel workers.
    ///
    /// Note: wall-clock timing is sensitive to co-scheduling; for
    /// publication-quality numbers run with `--threads 1`.
    ///
    /// # Panics
    /// Panics on unregistered policy names (a harness bug).
    pub fn run(&self, threads: usize) -> Vec<RuntimeResult> {
        // (cluster sizes × 1 × policies) grid: the "systems" dimension holds
        // the cluster sizes here.
        let grid = SweepGrid::new(self.cluster_sizes.len(), 1, self.policies.len());
        let outcomes = grid.run(threads, |pt| {
            let n = self.cluster_sizes[pt.system];
            let cluster = cluster_for_system(&self.profile, n, self.seed, pt.system);
            let config = SimConfig {
                spec: cluster,
                num_dispatchers: self.dispatchers,
                rounds: self.rounds,
                warmup_rounds: (self.rounds / 10).min(1_000),
                seed: mix_seed(self.seed, pt.system, 0),
                arrivals: ArrivalSpec::PoissonOfferedLoad {
                    offered_load: self.offered_load,
                },
                services: ServiceModel::Geometric,
                measure_decision_times: true,
                histogram_metrics: false,
                scenario: scd_sim::ScenarioSpec::default(),
                workload: scd_sim::WorkloadSpec::default(),
            };
            let factory = factory_by_name(&self.policies[pt.policy])
                .unwrap_or_else(|| panic!("unknown policy {}", self.policies[pt.policy]));
            Simulation::new(config)
                .expect("experiment configurations are valid")
                .run(factory.as_ref())
                .expect("registered policies never violate the protocol")
                .decision_times_us
                .expect("decision timing was requested")
        });

        let mut results: Vec<RuntimeResult> = self
            .cluster_sizes
            .iter()
            .map(|&n| RuntimeResult {
                n,
                samples: Vec::new(),
            })
            .collect();
        for (index, samples) in outcomes.into_iter().enumerate() {
            let pt = grid.point(index);
            results[pt.system]
                .samples
                .push((self.policies[pt.policy].clone(), samples));
        }
        results
    }

    /// Prints per-cluster-size percentile tables and, when CSV output is
    /// enabled, the decision-time CDF series.
    ///
    /// # Errors
    /// Propagates output I/O failures.
    pub fn emit(
        &self,
        results: &mut [RuntimeResult],
        label: &str,
        sink: &OutputSink,
    ) -> io::Result<()> {
        for result in results.iter_mut() {
            let mut table = Table::with_headers(&[
                "policy", "samples", "mean us", "p50 us", "p90 us", "p99 us", "max us",
            ]);
            for (policy, samples) in result.samples.iter() {
                table.add_row(vec![
                    policy.clone(),
                    samples.len().to_string(),
                    format!("{:.2}", samples.mean()),
                    format!("{:.2}", samples.percentile(0.50)),
                    format!("{:.2}", samples.percentile(0.90)),
                    format!("{:.2}", samples.percentile(0.99)),
                    format!("{:.2}", samples.max()),
                ]);
            }
            sink.emit_table(
                &format!(
                    "{label}: per-decision computation time [n={}, m={}, rho={:.2}]",
                    result.n, self.dispatchers, self.offered_load
                ),
                &format!("{label}_runtime_n{}", result.n),
                &table,
            )?;

            if sink.writes_csv() {
                let mut cdf_table = Table::with_headers(&["policy", "time_us", "cdf"]);
                for (policy, samples) in result.samples.iter() {
                    for (value, q) in samples.cdf(100) {
                        cdf_table.add_row(vec![
                            policy.clone(),
                            format!("{value:.3}"),
                            format!("{q:.4}"),
                        ]);
                    }
                }
                sink.emit_table(
                    &format!("{label}: decision-time CDF [n={}]", result.n),
                    &format!("{label}_runtime_cdf_n{}", result.n),
                    &cdf_table,
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_experiment() -> RuntimeExperiment {
        RuntimeExperiment {
            profile: RateProfile::paper_moderate(),
            cluster_sizes: vec![16, 32],
            dispatchers: 3,
            offered_load: 0.95,
            policies: vec!["SCD".into(), "SCD(alg1)".into(), "JSQ".into()],
            rounds: 200,
            seed: 1,
        }
    }

    #[test]
    fn collects_samples_for_every_policy_and_size() {
        let experiment = tiny_experiment();
        let results = experiment.run(2);
        assert_eq!(results.len(), 2);
        for result in &results {
            assert_eq!(result.samples.len(), 3);
            for (policy, samples) in &result.samples {
                assert!(!samples.is_empty(), "{policy} produced no samples");
            }
        }
        assert!(results[0].samples_for("SCD").is_some());
        assert!(results[0].samples_for("none").is_none());
    }

    #[test]
    fn quadratic_solver_is_slower_on_larger_clusters() {
        // The asymptotic claim behind Figure 5: Algorithm 1 (O(n²)) costs more
        // per decision than Algorithm 4 (O(n log n)) once n is non-trivial.
        let mut experiment = tiny_experiment();
        experiment.cluster_sizes = vec![128];
        experiment.rounds = 150;
        let mut results = experiment.run(1);
        let result = &mut results[0];
        let fast_mean = result
            .samples
            .iter()
            .find(|(p, _)| p == "SCD")
            .map(|(_, s)| s.mean())
            .unwrap();
        let quad_mean = result
            .samples
            .iter()
            .find(|(p, _)| p == "SCD(alg1)")
            .map(|(_, s)| s.mean())
            .unwrap();
        assert!(
            quad_mean > fast_mean,
            "Algorithm 1 mean {quad_mean}µs should exceed Algorithm 4 mean {fast_mean}µs"
        );
    }

    #[test]
    fn emit_prints_tables() {
        let experiment = tiny_experiment();
        let mut results = experiment.run(2);
        experiment
            .emit(&mut results, "test", &OutputSink::stdout_only())
            .unwrap();
    }
}
