//! Mean-response-time-vs-offered-load experiments (Figures 3a, 4a, 6a, 7a).
//!
//! For every `(n, m)` system and every offered load `ρ`, every policy is run
//! on *identical* arrival and departure processes; the experiment reports the
//! mean response time (the quantity on the y-axis of the paper's
//! sub-figures), plus the 99th percentile and the censored fraction as
//! sanity indicators.

use crate::output::OutputSink;
use crate::sweep::SweepGrid;
use scd_metrics::Table;
use scd_model::{ClusterSpec, RateProfile};
use scd_policies::factory_by_name;
use scd_sim::{ArrivalSpec, ServiceModel, SimConfig, Simulation};
use std::io;

/// Configuration of a mean-response-time sweep.
#[derive(Debug, Clone)]
pub struct ResponseTimeExperiment {
    /// Heterogeneity profile used to draw the cluster.
    pub profile: RateProfile,
    /// Policy names (must exist in the registry).
    pub policies: Vec<String>,
    /// `(n, m)` systems to simulate.
    pub systems: Vec<(usize, usize)>,
    /// Offered loads to sweep.
    pub loads: Vec<f64>,
    /// Rounds per run.
    pub rounds: u64,
    /// Warm-up rounds excluded from statistics.
    pub warmup: u64,
    /// Master seed.
    pub seed: u64,
    /// Statistically independent replications per `(system, load, policy)`
    /// cell; the reported statistics are averaged across them. `0` and `1`
    /// both mean a single run (whose results are identical to the
    /// pre-replication harness).
    pub replications: usize,
}

/// Results for one `(n, m)` system.
#[derive(Debug, Clone)]
pub struct SystemSeries {
    /// Number of servers.
    pub n: usize,
    /// Number of dispatchers.
    pub m: usize,
    /// The offered loads of the sweep (row labels).
    pub loads: Vec<f64>,
    /// The policies of the sweep (column labels).
    pub policies: Vec<String>,
    /// `mean[load][policy]` — mean response time in rounds.
    pub mean: Vec<Vec<f64>>,
    /// `p99[load][policy]` — 99th-percentile response time in rounds.
    pub p99: Vec<Vec<u64>>,
    /// `censored[load][policy]` — fraction of jobs still queued at the end.
    pub censored: Vec<Vec<f64>>,
}

impl SystemSeries {
    /// The mean response time of one policy at one load.
    pub fn mean_at(&self, load_index: usize, policy: &str) -> Option<f64> {
        let p = self.policies.iter().position(|name| name == policy)?;
        self.mean.get(load_index).map(|row| row[p])
    }
}

/// Mixes experiment coordinates into a per-run seed so that all policies of
/// one `(system, load)` cell share arrival/service streams while different
/// cells get independent streams.
pub fn mix_seed(seed: u64, system_index: usize, load_index: usize) -> u64 {
    // SplitMix64 finalizer over the packed coordinates (bit-identical to
    // the historical inline mixer, so recorded results stay reproducible).
    scd_model::streams::splitmix64_mix(
        seed ^ (0x9E37_79B9_7F4A_7C15u64
            .wrapping_mul((system_index as u64).wrapping_add(1))
            .wrapping_add(
                0xBF58_476D_1CE4_E5B9u64.wrapping_mul((load_index as u64).wrapping_add(1)),
            )),
    )
}

/// The engine seed of replication `rep` of one `(system, load)` cell.
/// Replication 0 is `mix_seed(seed, si, li)` — exactly the seed the
/// pre-replication harness used — so single-replication sweeps reproduce the
/// historical results bit for bit; higher replications remix deterministically.
///
/// Public (with [`mix_seed`]) so the shard/stream collision audit in
/// `tests/sharded_engine.rs` can enumerate the *actual* masters the sweep
/// harness feeds into the engine rather than a re-derived approximation.
pub fn replication_seed(seed: u64, system_index: usize, load_index: usize, rep: usize) -> u64 {
    let base = mix_seed(seed, system_index, load_index);
    if rep == 0 {
        base
    } else {
        mix_seed(base, rep, 0x0005_EED5)
    }
}

/// Materializes the cluster for one system (identical across loads and
/// policies for a fixed experiment seed).
pub(crate) fn cluster_for_system(
    profile: &RateProfile,
    n: usize,
    seed: u64,
    system_index: usize,
) -> ClusterSpec {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(mix_seed(seed, system_index, usize::MAX));
    profile
        .materialize(n, &mut rng)
        .expect("rate profiles produce valid clusters")
}

impl ResponseTimeExperiment {
    /// Runs the sweep with up to `threads` parallel workers.
    ///
    /// # Panics
    /// Panics if a policy name is not registered or a simulation fails
    /// (both indicate a bug in the harness rather than user input).
    pub fn run(&self, threads: usize) -> Vec<SystemSeries> {
        let replications = self.replications.max(1);
        let grid = SweepGrid::new(self.systems.len(), self.loads.len(), self.policies.len())
            .with_seeds(replications);

        let clusters: Vec<ClusterSpec> = self
            .systems
            .iter()
            .enumerate()
            .map(|(si, &(n, _))| cluster_for_system(&self.profile, n, self.seed, si))
            .collect();

        // One engine run per grid cell, fanned out end-to-end on the shared
        // persistent worker pool: every (system, load, policy, replication) tuple
        // is an independent unit of work.
        let outcomes = grid.run(threads, |pt| {
            let (_, m) = self.systems[pt.system];
            let load = self.loads[pt.load];
            let policy_name = &self.policies[pt.policy];
            let config = SimConfig {
                spec: clusters[pt.system].clone(),
                num_dispatchers: m,
                rounds: self.rounds,
                warmup_rounds: self.warmup,
                seed: replication_seed(self.seed, pt.system, pt.load, pt.seed),
                arrivals: ArrivalSpec::PoissonOfferedLoad { offered_load: load },
                services: ServiceModel::Geometric,
                measure_decision_times: false,
                histogram_metrics: false,
                scenario: scd_sim::ScenarioSpec::default(),
                workload: scd_sim::WorkloadSpec::default(),
            };
            let factory = factory_by_name(policy_name)
                .unwrap_or_else(|| panic!("unknown policy {policy_name}"));
            let report = Simulation::new(config)
                .expect("experiment configurations are valid")
                .run(factory.as_ref())
                .expect("registered policies never violate the protocol");
            (
                report.mean_response_time(),
                report.response_time_percentile(0.99),
                report.censored_fraction(),
            )
        });

        let mut results: Vec<SystemSeries> = self
            .systems
            .iter()
            .map(|&(n, m)| SystemSeries {
                n,
                m,
                loads: self.loads.clone(),
                policies: self.policies.clone(),
                mean: vec![vec![0.0; self.policies.len()]; self.loads.len()],
                p99: vec![vec![0; self.policies.len()]; self.loads.len()],
                censored: vec![vec![0.0; self.policies.len()]; self.loads.len()],
            })
            .collect();

        // Scatter, averaging across the replication dimension.
        let scale = 1.0 / replications as f64;
        let mut p99_sums = vec![0u64; grid.len() / replications];
        for (index, (mean, p99, censored)) in outcomes.into_iter().enumerate() {
            let pt = grid.point(index);
            let series = &mut results[pt.system];
            series.mean[pt.load][pt.policy] += mean * scale;
            series.censored[pt.load][pt.policy] += censored * scale;
            p99_sums[index / replications] += p99;
        }
        for (cell, sum) in p99_sums.into_iter().enumerate() {
            let pt = grid.point(cell * replications);
            results[pt.system].p99[pt.load][pt.policy] = (sum as f64 * scale).round() as u64;
        }
        results
    }

    /// Prints (and optionally CSV-dumps) one mean-response-time table per
    /// system, in the layout of the paper's sub-figures.
    ///
    /// # Errors
    /// Propagates output I/O failures.
    pub fn emit(&self, results: &[SystemSeries], label: &str, sink: &OutputSink) -> io::Result<()> {
        for series in results {
            let mut headers = vec!["rho".to_string()];
            headers.extend(series.policies.iter().cloned());
            let mut mean_table = Table::new(headers.clone());
            let mut p99_table = Table::new(headers);
            for (li, &load) in series.loads.iter().enumerate() {
                mean_table.add_numeric_row(&format!("{load:.2}"), &series.mean[li], 3);
                let p99_row: Vec<f64> = series.p99[li].iter().map(|&v| v as f64).collect();
                p99_table.add_numeric_row(&format!("{load:.2}"), &p99_row, 0);
            }
            let system = format!("n={}, m={}", series.n, series.m);
            sink.emit_table(
                &format!("{label}: mean response time [{system}]"),
                &format!("{label}_mean_n{}_m{}", series.n, series.m),
                &mean_table,
            )?;
            sink.emit_table(
                &format!("{label}: p99 response time [{system}]"),
                &format!("{label}_p99_n{}_m{}", series.n, series.m),
                &p99_table,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_experiment() -> ResponseTimeExperiment {
        ResponseTimeExperiment {
            profile: RateProfile::paper_moderate(),
            policies: vec!["SCD".into(), "JSQ".into(), "WR".into()],
            systems: vec![(12, 3)],
            loads: vec![0.7, 0.95],
            rounds: 400,
            warmup: 50,
            seed: 5,
            replications: 1,
        }
    }

    #[test]
    fn runs_and_fills_every_cell() {
        let experiment = tiny_experiment();
        let results = experiment.run(2);
        assert_eq!(results.len(), 1);
        let series = &results[0];
        assert_eq!(series.mean.len(), 2);
        assert_eq!(series.mean[0].len(), 3);
        for row in &series.mean {
            for &value in row {
                assert!(
                    value > 0.0,
                    "every cell must hold a positive mean, got {value}"
                );
            }
        }
        assert!(series.mean_at(0, "SCD").unwrap() > 0.0);
        assert!(series.mean_at(0, "nope").is_none());
    }

    #[test]
    fn results_are_deterministic_for_a_seed() {
        let experiment = tiny_experiment();
        let a = experiment.run(1);
        let b = experiment.run(4);
        assert_eq!(a[0].mean, b[0].mean, "thread count must not change results");
        assert_eq!(a[0].p99, b[0].p99);
    }

    #[test]
    fn replicated_sweeps_are_deterministic_and_average_real_runs() {
        let mut experiment = tiny_experiment();
        experiment.replications = 3;
        let a = experiment.run(1);
        let b = experiment.run(8);
        assert_eq!(
            a[0].mean, b[0].mean,
            "replicated grids must be bit-identical across thread counts"
        );
        assert_eq!(a[0].p99, b[0].p99);
        // The averaged mean differs from the single-replication value (the
        // replications genuinely redraw the stochastic processes)...
        let single = tiny_experiment().run(1);
        assert_ne!(a[0].mean, single[0].mean);
        // ...but stays in a sane band around it.
        for (avg_row, single_row) in a[0].mean.iter().zip(&single[0].mean) {
            for (avg, one) in avg_row.iter().zip(single_row) {
                assert!(avg > &0.0);
                assert!((avg - one).abs() / one < 1.0, "avg {avg} vs single {one}");
            }
        }
    }

    #[test]
    fn replication_zero_reproduces_the_unreplicated_seed() {
        // Replication 0 must use exactly the historical per-cell seed so old
        // results stay reproducible.
        assert_eq!(replication_seed(42, 3, 5, 0), mix_seed(42, 3, 5));
        assert_ne!(replication_seed(42, 3, 5, 1), mix_seed(42, 3, 5));
        assert_ne!(replication_seed(42, 3, 5, 1), replication_seed(42, 3, 5, 2));
    }

    #[test]
    fn scd_does_not_lose_to_weighted_random_at_high_load() {
        let experiment = tiny_experiment();
        let results = experiment.run(2);
        let series = &results[0];
        // At the higher load (index 1) SCD must be no worse than the
        // load-oblivious WR baseline.
        let scd = series.mean_at(1, "SCD").unwrap();
        let wr = series.mean_at(1, "WR").unwrap();
        assert!(scd <= wr, "SCD mean {scd} vs WR mean {wr}");
    }

    #[test]
    fn emit_writes_tables() {
        let experiment = tiny_experiment();
        let results = experiment.run(2);
        let sink = OutputSink::stdout_only();
        experiment.emit(&results, "test", &sink).unwrap();
    }
}
