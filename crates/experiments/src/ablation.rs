//! Ablation experiments called out in DESIGN.md.
//!
//! * **Arrival-estimator ablation** — the paper's estimator `a_est = m·a(d)`
//!   versus using only the dispatcher's own arrivals (SED-like limit) and a
//!   large constant (weighted-random-like limit). Section 5.2 of the paper
//!   argues the paper's rule lands between the two extremes; this experiment
//!   quantifies that on the simulator.
//! * **Solver-equivalence spot check** — Algorithm 1 and Algorithm 4 run on
//!   the *same* streams and must produce statistically identical dispatching
//!   (their response-time histograms coincide exactly because they compute
//!   the same probabilities and consume randomness identically).

use crate::output::OutputSink;
use crate::response::{cluster_for_system, mix_seed};
use crate::sweep::SweepGrid;
use scd_core::estimator::ArrivalEstimator;
use scd_core::policy::ScdFactory;
use scd_core::solver::SolverKind;
use scd_metrics::Table;
use scd_model::RateProfile;
use scd_sim::{ArrivalSpec, ServiceModel, SimConfig, Simulation};
use std::io;

/// Configuration of the estimator ablation.
#[derive(Debug, Clone)]
pub struct EstimatorAblation {
    /// Heterogeneity profile used to draw the cluster.
    pub profile: RateProfile,
    /// Number of servers.
    pub n: usize,
    /// Number of dispatchers.
    pub m: usize,
    /// Offered loads to sweep.
    pub loads: Vec<f64>,
    /// Rounds per run.
    pub rounds: u64,
    /// Warm-up rounds.
    pub warmup: u64,
    /// Master seed.
    pub seed: u64,
}

/// One row of ablation output.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// The offered load.
    pub load: f64,
    /// `(variant label, mean response time, p99 response time)` triples.
    pub outcomes: Vec<(String, f64, u64)>,
}

impl EstimatorAblation {
    /// The SCD variants compared by the ablation.
    fn variants(&self) -> Vec<(String, ScdFactory)> {
        let capacity_like = (self.n as f64) * 10.0;
        vec![
            (
                "SCD[m*a(d)]".to_string(),
                ScdFactory::with_options(ArrivalEstimator::ScaledByDispatchers, SolverKind::Fast)
                    .with_name("SCD[m*a(d)]"),
            ),
            (
                "SCD[a(d)]".to_string(),
                ScdFactory::with_options(ArrivalEstimator::OwnOnly, SolverKind::Fast)
                    .with_name("SCD[a(d)]"),
            ),
            (
                "SCD[const]".to_string(),
                ScdFactory::with_options(
                    ArrivalEstimator::Constant(capacity_like),
                    SolverKind::Fast,
                )
                .with_name("SCD[const]"),
            ),
        ]
    }

    /// Runs the ablation.
    pub fn run(&self, threads: usize) -> Vec<AblationRow> {
        let cluster = cluster_for_system(&self.profile, self.n, self.seed, 0);
        let variants = self.variants();

        // (1 × loads × variants) grid: the "policies" dimension holds the
        // estimator variants here.
        let grid = SweepGrid::new(1, self.loads.len(), variants.len());
        let outcomes = grid.run(threads, |pt| {
            let config = SimConfig {
                spec: cluster.clone(),
                num_dispatchers: self.m,
                rounds: self.rounds,
                warmup_rounds: self.warmup,
                seed: mix_seed(self.seed, 7, pt.load),
                arrivals: ArrivalSpec::PoissonOfferedLoad {
                    offered_load: self.loads[pt.load],
                },
                services: ServiceModel::Geometric,
                measure_decision_times: false,
                histogram_metrics: false,
                scenario: scd_sim::ScenarioSpec::default(),
                workload: scd_sim::WorkloadSpec::default(),
            };
            let report = Simulation::new(config)
                .expect("experiment configurations are valid")
                .run(&variants[pt.policy].1)
                .expect("SCD never violates the protocol");
            (
                report.mean_response_time(),
                report.response_time_percentile(0.99),
            )
        });

        let mut rows: Vec<AblationRow> = self
            .loads
            .iter()
            .map(|&load| AblationRow {
                load,
                outcomes: Vec::new(),
            })
            .collect();
        for (index, (mean, p99)) in outcomes.into_iter().enumerate() {
            let pt = grid.point(index);
            rows[pt.load]
                .outcomes
                .push((variants[pt.policy].0.clone(), mean, p99));
        }
        rows
    }

    /// Prints the ablation table.
    ///
    /// # Errors
    /// Propagates output I/O failures.
    pub fn emit(&self, rows: &[AblationRow], sink: &OutputSink) -> io::Result<()> {
        let mut headers = vec!["rho".to_string()];
        if let Some(first) = rows.first() {
            for (label, _, _) in &first.outcomes {
                headers.push(format!("{label} mean"));
                headers.push(format!("{label} p99"));
            }
        }
        let mut table = Table::new(headers);
        for row in rows {
            let mut cells = vec![format!("{:.2}", row.load)];
            for (_, mean, p99) in &row.outcomes {
                cells.push(format!("{mean:.3}"));
                cells.push(p99.to_string());
            }
            table.add_row(cells);
        }
        sink.emit_table(
            &format!(
                "Estimator ablation [n={}, m={}, profile={:?}]",
                self.n, self.m, self.profile
            ),
            "ablation_estimator",
            &table,
        )
    }
}

/// Verifies that SCD via Algorithm 1 and via Algorithm 4 produce identical
/// simulated behaviour on the same streams; returns `(alg4 mean, alg1 mean)`.
pub fn solver_equivalence_check(
    profile: &RateProfile,
    n: usize,
    m: usize,
    offered_load: f64,
    rounds: u64,
    seed: u64,
) -> (f64, f64) {
    let cluster = cluster_for_system(profile, n, seed, 3);
    let config = SimConfig {
        spec: cluster,
        num_dispatchers: m,
        rounds,
        warmup_rounds: rounds / 10,
        seed,
        arrivals: ArrivalSpec::PoissonOfferedLoad { offered_load },
        services: ServiceModel::Geometric,
        measure_decision_times: false,
        histogram_metrics: false,
        scenario: scd_sim::ScenarioSpec::default(),
        workload: scd_sim::WorkloadSpec::default(),
    };
    let simulation = Simulation::new(config).expect("valid configuration");
    // Pin both runs to the classic per-server sampler: the equivalence claim
    // is about the solvers, and the compressed kernel (Fast-only) consumes
    // the RNG stream differently, so the sample paths would diverge even
    // with identical per-round distributions.
    let fast = ScdFactory::with_options(ArrivalEstimator::ScaledByDispatchers, SolverKind::Fast)
        .classic_sampler();
    let quad =
        ScdFactory::with_options(ArrivalEstimator::ScaledByDispatchers, SolverKind::Quadratic);
    let fast_report = simulation.run(&fast).expect("SCD runs cleanly");
    let quad_report = simulation.run(&quad).expect("SCD(alg1) runs cleanly");
    (
        fast_report.mean_response_time(),
        quad_report.mean_response_time(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_runs_and_reports_all_variants() {
        let ablation = EstimatorAblation {
            profile: RateProfile::paper_moderate(),
            n: 12,
            m: 4,
            loads: vec![0.9],
            rounds: 400,
            warmup: 50,
            seed: 9,
        };
        let rows = ablation.run(2);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].outcomes.len(), 3);
        for (label, mean, p99) in &rows[0].outcomes {
            assert!(mean > &0.0, "{label} produced a zero mean");
            assert!(*p99 >= 1);
        }
        ablation.emit(&rows, &OutputSink::stdout_only()).unwrap();
    }

    #[test]
    fn solver_equivalence_holds_in_simulation() {
        let (fast, quad) =
            solver_equivalence_check(&RateProfile::paper_moderate(), 10, 3, 0.9, 500, 77);
        // Identical probabilities + identical random streams → identical runs.
        assert!(
            (fast - quad).abs() < 1e-9,
            "solver variants diverged: {fast} vs {quad}"
        );
    }
}
