//! Result presentation: printing tables and (optionally) writing CSV files.

use scd_metrics::Table;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Where experiment output goes: always to stdout, optionally also to CSV
/// files in a directory.
#[derive(Debug, Clone, Default)]
pub struct OutputSink {
    csv_dir: Option<PathBuf>,
}

impl OutputSink {
    /// Output to stdout only.
    pub fn stdout_only() -> Self {
        OutputSink { csv_dir: None }
    }

    /// Output to stdout and CSV files under `dir` (created if missing).
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn with_csv_dir(dir: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(OutputSink {
            csv_dir: Some(dir.as_ref().to_path_buf()),
        })
    }

    /// Creates the sink from an optional directory (the CLI's `--csv` flag).
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn from_option(dir: Option<&Path>) -> io::Result<Self> {
        match dir {
            Some(d) => Self::with_csv_dir(d),
            None => Ok(Self::stdout_only()),
        }
    }

    /// True when CSV output is enabled.
    pub fn writes_csv(&self) -> bool {
        self.csv_dir.is_some()
    }

    /// Prints a titled table to stdout and, when enabled, writes it as
    /// `<name>.csv`.
    ///
    /// # Errors
    /// Propagates file-write failures.
    pub fn emit_table(&self, title: &str, name: &str, table: &Table) -> io::Result<()> {
        println!("\n== {title} ==");
        println!("{table}");
        if let Some(dir) = &self.csv_dir {
            let path = dir.join(format!("{name}.csv"));
            fs::write(&path, table.to_csv())?;
            println!("[csv written to {}]", path.display());
        }
        Ok(())
    }

    /// Prints a free-form note.
    pub fn note(&self, text: &str) {
        println!("{text}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdout_only_never_touches_disk() {
        let sink = OutputSink::stdout_only();
        assert!(!sink.writes_csv());
        let mut table = Table::with_headers(&["a"]);
        table.add_row(vec!["1".into()]);
        sink.emit_table("demo", "demo", &table).unwrap();
    }

    #[test]
    fn csv_files_are_written() {
        let dir = std::env::temp_dir().join(format!("scd-output-test-{}", std::process::id()));
        let sink = OutputSink::with_csv_dir(&dir).unwrap();
        assert!(sink.writes_csv());
        let mut table = Table::with_headers(&["x", "y"]);
        table.add_row(vec!["1".into(), "2".into()]);
        sink.emit_table("demo", "series", &table).unwrap();
        let written = fs::read_to_string(dir.join("series.csv")).unwrap();
        assert!(written.starts_with("x,y\n"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn from_option_dispatches() {
        assert!(!OutputSink::from_option(None).unwrap().writes_csv());
        let dir = std::env::temp_dir().join(format!("scd-output-opt-{}", std::process::id()));
        assert!(OutputSink::from_option(Some(dir.as_path()))
            .unwrap()
            .writes_csv());
        fs::remove_dir_all(&dir).unwrap();
    }
}
