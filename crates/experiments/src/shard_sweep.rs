//! The sharded policy sweep behind the `sweep` binary.
//!
//! Runs a `(system × load × policy × replication)` grid on the **sharded**
//! round engine: every cell simulates its system as `--shards k` independent
//! server shards (striped partition, per-shard RNG sub-streams) and merges
//! the per-shard reports into one system-wide result. With `k = 1` every
//! cell is bit-identical to the unsharded engine, so the binary doubles as
//! an end-to-end smoke test of the shard/merge path in CI (`--quick
//! --shards 4`) and as the harness for shard-count scaling studies.
//!
//! The grid itself rides [`SweepGrid`] — the same unified executor all
//! figure experiments use — so cells are distributed over the persistent
//! worker pool while each cell steps its shards sequentially (no nested
//! oversubscription); results are bit-identical for every thread count.

use crate::cli::CliOptions;
use crate::output::OutputSink;
use crate::response::{cluster_for_system, replication_seed};
use crate::sweep::{effective_threads, SweepGrid};
use scd_metrics::Table;
use scd_model::RateProfile;
use scd_policies::factory_by_name;
use scd_sim::{
    write_chrome_trace, ArrivalSpec, ScenarioSpec, ServiceModel, ShardedSimulation, SimConfig,
    StalenessSpec, WorkloadSpec,
};
use std::time::Duration;

/// Resolved configuration of one sharded sweep.
#[derive(Debug, Clone)]
pub struct ShardSweepSpec {
    /// Heterogeneity profile used to draw the clusters.
    pub profile: RateProfile,
    /// Policy names (must exist in the registry).
    pub policies: Vec<String>,
    /// `(n, m)` systems to simulate.
    pub systems: Vec<(usize, usize)>,
    /// Offered loads to sweep.
    pub loads: Vec<f64>,
    /// Rounds per run.
    pub rounds: u64,
    /// Warm-up rounds excluded from statistics.
    pub warmup: u64,
    /// Master seed.
    pub seed: u64,
    /// Independent replications per cell (statistics are averaged).
    pub replications: usize,
    /// Number of server shards per simulation.
    pub shards: usize,
    /// When set, run every cell as this many supervised `shard_worker` OS
    /// processes via the fabric orchestrator instead of in-process shards
    /// (`--processes K`; bit-identical to `shards = K` when no worker is
    /// lost). Overrides `shards` and pins the grid to one thread — the
    /// worker processes are the parallel dimension then.
    pub processes: Option<usize>,
    /// Heartbeat deadline per worker in `processes` mode (`--worker-timeout`
    /// in milliseconds): the longest allowed gap between consecutive frames
    /// on a worker's stdout, a per-attempt wall clock in one-shot mode.
    pub worker_timeout: Duration,
    /// Retry budget per shard after the first attempt in `processes` mode
    /// (`--max-retries`).
    pub max_retries: u32,
    /// Checkpoint streaming cadence in rounds for `processes` mode
    /// (`--checkpoint-every`; 0 = legacy one-shot workers, retries restart
    /// from seed).
    pub checkpoint_every: u64,
    /// Worker threads for the cell grid.
    pub threads: usize,
    /// Fault/churn/staleness scenario applied to every cell (the default is
    /// inert: fair-weather runs, no degradation columns in the output).
    pub scenario: ScenarioSpec,
    /// Time-varying / trace-driven workload applied to every cell (the
    /// default is inert: stationary Poisson arrivals).
    pub workload: WorkloadSpec,
    /// Collect queue statistics in histogram-only mode (no per-server
    /// vectors). Switched on automatically when any swept system reaches
    /// [`HISTOGRAM_METRICS_THRESHOLD`] servers, so mean-field-scale runs
    /// (`--servers 100000`) keep per-shard memory at `O(n)` state plus an
    /// `O(max queue length)` histogram.
    pub histogram_metrics: bool,
}

/// Server count at and above which the sweep collects queue statistics in
/// histogram-only mode (the per-server `worst_mean_queue` column degrades
/// to the across-server mean there).
pub const HISTOGRAM_METRICS_THRESHOLD: usize = 10_000;

impl ShardSweepSpec {
    /// Resolves CLI options into a sweep specification (scale presets
    /// mirror the figure binaries: `--paper`, default, `--quick`).
    pub fn resolve(options: &CliOptions) -> Self {
        let (rounds, systems, loads) = if options.paper {
            (
                50_000,
                vec![(100, 10), (200, 20)],
                vec![0.5, 0.7, 0.9, 0.95, 0.99],
            )
        } else if options.quick {
            // 4 dispatchers so the CI smoke run (`--quick --shards 4`) can
            // give every shard at least one.
            (400, vec![(16, 4)], vec![0.9])
        } else {
            (4_000, vec![(64, 4)], vec![0.7, 0.9, 0.95])
        };
        let rounds = options.rounds.unwrap_or(rounds);
        let mut systems = options.systems.clone().unwrap_or(systems);
        if let Some(n) = options.servers {
            // The mean-field scale knob: force every system to n servers,
            // keeping its dispatcher count (and dropping duplicates the
            // override may create).
            for system in &mut systems {
                system.0 = n;
            }
            systems.dedup();
        }
        let histogram_metrics = systems
            .iter()
            .any(|&(n, _)| n >= HISTOGRAM_METRICS_THRESHOLD);
        ShardSweepSpec {
            profile: RateProfile::paper_moderate(),
            policies: vec!["SCD".into(), "JSQ".into(), "SED".into()],
            systems,
            loads: options.loads.clone().unwrap_or(loads),
            rounds,
            warmup: rounds / 10,
            seed: options.seed,
            replications: options.replications.max(1),
            shards: options.processes.unwrap_or(options.shards),
            processes: options.processes,
            worker_timeout: Duration::from_millis(options.worker_timeout_ms),
            max_retries: options.max_retries,
            checkpoint_every: options.checkpoint_every,
            threads: if options.processes.is_some() {
                1
            } else {
                effective_threads(options.threads)
            },
            scenario: ScenarioSpec::default(),
            workload: WorkloadSpec::default(),
            histogram_metrics,
        }
    }
}

/// Resolves the `--scenario` / `--stale-k` / `--fail-rate` flags into one
/// [`ScenarioSpec`]: the scenario file (if any) is the base, the explicit
/// flags override on top. `--fail-rate` alone supplies a default repair rate
/// of 0.1 so crashed servers do not stay down for the rest of the run.
///
/// # Errors
/// Returns a message for unreadable files and malformed scenario keys.
pub fn scenario_from_options(options: &CliOptions) -> Result<ScenarioSpec, String> {
    let mut scenario = match &options.scenario {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read scenario file {}: {e}", path.display()))?;
            ScenarioSpec::from_key_values(&text).map_err(|e| e.to_string())?
        }
        None => ScenarioSpec::default(),
    };
    if let Some(rate) = options.fail_rate {
        scenario.server_fail_rate = rate;
        if rate > 0.0 && scenario.server_repair_rate == 0.0 {
            scenario.server_repair_rate = 0.1;
        }
    }
    if let Some(k) = options.stale_k {
        scenario.staleness = StalenessSpec::Fixed { k };
    }
    Ok(scenario)
}

/// Resolves the `--workload` flag into a [`WorkloadSpec`] (inert when the
/// flag is absent).
///
/// # Errors
/// Returns a message for unreadable files and malformed workload keys.
pub fn workload_from_options(options: &CliOptions) -> Result<WorkloadSpec, String> {
    match &options.workload {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read workload file {}: {e}", path.display()))?;
            WorkloadSpec::from_key_values(&text).map_err(|e| e.to_string())
        }
        None => Ok(WorkloadSpec::default()),
    }
}

/// The averaged statistics of one `(system, load, policy)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSweepCell {
    /// Number of servers.
    pub n: usize,
    /// Number of dispatchers `m` (split across the shards).
    pub m: usize,
    /// Offered load.
    pub load: f64,
    /// Policy name.
    pub policy: String,
    /// Mean response time (rounds), averaged over replications.
    pub mean: f64,
    /// 99th-percentile response time (rounds), averaged over replications.
    pub p99: f64,
    /// Mean total backlog, averaged over replications.
    pub backlog: f64,
    /// Censored-job fraction, averaged over replications.
    pub censored: f64,
    /// Averaged degradation metrics, present only for non-inert scenarios
    /// (order: server-down rounds, dispatcher-offline rounds, arrivals lost,
    /// probes dropped, stale-decision rounds, herding rounds).
    pub degradation: Option<[f64; 6]>,
}

/// Raw per-replication statistics: `(mean RT, p99 RT, backlog, censored,
/// degradation columns)`.
type CellStats = (f64, f64, f64, f64, Option<[f64; 6]>);

/// Runs the sweep grid and returns one averaged cell per
/// `(system, load, policy)` in row-major order.
///
/// # Errors
/// Returns a message for unknown policies, invalid shard counts (e.g. more
/// shards than servers) and policy violations.
pub fn run_shard_sweep(spec: &ShardSweepSpec) -> Result<Vec<ShardSweepCell>, String> {
    for policy in &spec.policies {
        if factory_by_name(policy).is_none() {
            return Err(format!("unknown policy {policy}"));
        }
    }
    let replications = spec.replications.max(1);
    let grid = SweepGrid::new(spec.systems.len(), spec.loads.len(), spec.policies.len())
        .with_seeds(replications);
    let runs: Vec<Result<CellStats, String>> = grid.run(spec.threads, |pt| {
        let (n, m) = spec.systems[pt.system];
        let cluster = cluster_for_system(&spec.profile, n, spec.seed, pt.system);
        let config = SimConfig {
            spec: cluster,
            num_dispatchers: m,
            rounds: spec.rounds,
            warmup_rounds: spec.warmup,
            seed: replication_seed(spec.seed, pt.system, pt.load, pt.seed),
            arrivals: ArrivalSpec::PoissonOfferedLoad {
                offered_load: spec.loads[pt.load],
            },
            services: ServiceModel::Geometric,
            measure_decision_times: false,
            histogram_metrics: spec.histogram_metrics,
            scenario: spec.scenario.clone(),
            workload: spec.workload.clone(),
        };
        let report = match spec.processes {
            // Fabric mode: the cell fans out over supervised worker
            // processes (the grid runs single-threaded then).
            Some(k) => {
                crate::fabric::fabric_run(
                    &config,
                    &spec.policies[pt.policy],
                    k,
                    spec.worker_timeout,
                    spec.max_retries,
                    spec.checkpoint_every,
                )?
                .report
            }
            None => {
                let factory = factory_by_name(&spec.policies[pt.policy]).expect("validated above");
                // Each cell steps its shards sequentially — the grid is the
                // parallel dimension here (no nested oversubscription).
                ShardedSimulation::new(config, spec.shards)
                    .map_err(|e| e.to_string())?
                    .run(factory.as_ref())
                    .map_err(|e| e.to_string())?
            }
        };
        Ok((
            report.mean_response_time(),
            report.response_time_percentile(0.99) as f64,
            report.queues.mean_total_backlog,
            report.censored_fraction(),
            report.degradation.map(|d| {
                [
                    d.server_down_rounds as f64,
                    d.dispatcher_offline_rounds as f64,
                    d.arrivals_lost as f64,
                    d.probes_dropped as f64,
                    d.stale_decision_rounds as f64,
                    d.herding_rounds as f64,
                ]
            }),
        ))
    });

    // Average the replication dimension (innermost in row-major order).
    let mut cells = Vec::with_capacity(grid.len() / replications);
    for (chunk_index, chunk) in runs.chunks(replications).enumerate() {
        let mut mean = 0.0;
        let mut p99 = 0.0;
        let mut backlog = 0.0;
        let mut censored = 0.0;
        let mut degradation: Option<[f64; 6]> = None;
        for run in chunk {
            let (m, p, b, c, d) = run.clone()?;
            mean += m;
            p99 += p;
            backlog += b;
            censored += c;
            if let Some(d) = d {
                let sums = degradation.get_or_insert([0.0; 6]);
                for (sum, value) in sums.iter_mut().zip(d) {
                    *sum += value;
                }
            }
        }
        let scale = 1.0 / replications as f64;
        let pt = grid.point(chunk_index * replications);
        let (n, m) = spec.systems[pt.system];
        cells.push(ShardSweepCell {
            n,
            m,
            load: spec.loads[pt.load],
            policy: spec.policies[pt.policy].clone(),
            mean: mean * scale,
            p99: p99 * scale,
            backlog: backlog * scale,
            censored: censored * scale,
            degradation: degradation.map(|sums| sums.map(|s| s * scale)),
        });
    }
    Ok(cells)
}

/// Renders the cells of one system as a text table. Under a non-inert
/// scenario six degradation columns are appended after the fair-weather
/// statistics (the CSV header keeps its `load,policy,mean` prefix either
/// way).
pub fn system_table(cells: &[ShardSweepCell], n: usize, m: usize) -> Table {
    let system: Vec<&ShardSweepCell> = cells.iter().filter(|c| c.n == n && c.m == m).collect();
    let degraded = system.iter().any(|c| c.degradation.is_some());
    let mut headers = vec!["load", "policy", "mean", "p99", "backlog", "censored %"];
    if degraded {
        headers.extend([
            "down rounds",
            "offline rounds",
            "arrivals lost",
            "probes dropped",
            "stale rounds",
            "herding rounds",
        ]);
    }
    let mut table = Table::with_headers(&headers);
    for cell in system {
        let mut row = vec![
            format!("{:.2}", cell.load),
            cell.policy.clone(),
            format!("{:.3}", cell.mean),
            format!("{:.1}", cell.p99),
            format!("{:.1}", cell.backlog),
            format!("{:.3}", 100.0 * cell.censored),
        ];
        if degraded {
            let metrics = cell.degradation.unwrap_or([0.0; 6]);
            row.extend(metrics.iter().map(|v| format!("{v:.1}")));
        }
        table.add_row(row);
    }
    table
}

/// The `sweep` binary's entry point: resolve, run, print (and write CSV
/// when `--csv` is given, one `sweep_n{n}m{m}_k{k}.csv` per system).
///
/// # Errors
/// Propagates [`run_shard_sweep`] errors and CSV I/O failures as
/// human-readable messages.
pub fn run_from_options(options: &CliOptions) -> Result<(), String> {
    let mut spec = ShardSweepSpec::resolve(options);
    spec.scenario = scenario_from_options(options)?;
    spec.workload = workload_from_options(options)?;
    let sink = OutputSink::from_option(options.csv.as_deref()).map_err(|e| e.to_string())?;
    sink.note(&format!(
        "[sweep] shards={} rounds={} seed={} replications={} threads={} profile={:?}",
        spec.shards, spec.rounds, spec.seed, spec.replications, spec.threads, spec.profile
    ));
    if let Some(k) = spec.processes {
        sink.note(&format!(
            "[sweep] multi-process fabric: every cell runs as {k} supervised shard_worker \
             processes (timeout={}ms retries={} checkpoint-every={})",
            spec.worker_timeout.as_millis(),
            spec.max_retries,
            spec.checkpoint_every,
        ));
    }
    if spec.histogram_metrics {
        sink.note(
            "[sweep] histogram-only queue metrics (mean-field scale): per-server vectors are \
             not allocated; worst_mean_queue degrades to the across-server mean",
        );
    }
    if !spec.scenario.is_inert() {
        sink.note(&format!(
            "[sweep] scenario: {}",
            spec.scenario.to_key_values().replace('\n', " ")
        ));
    }
    if !spec.workload.is_inert() {
        sink.note(&format!(
            "[sweep] workload: {}",
            spec.workload.to_key_values().replace('\n', " ")
        ));
    }
    if options.tail {
        sink.note("--tail applies to the figure binaries; the sharded sweep reports p99 per cell");
    }
    let cells = run_shard_sweep(&spec)?;
    for &(n, m) in &spec.systems {
        sink.emit_table(
            &format!(
                "sweep: n={n} m={m}, {} shard(s) of ~{} servers",
                spec.shards,
                n.div_ceil(spec.shards)
            ),
            &format!("sweep_n{n}m{m}_k{}", spec.shards),
            &system_table(&cells, n, m),
        )
        .map_err(|e| e.to_string())?;
    }
    if let Some(path) = &options.trace_out {
        let events = write_first_cell_trace(&spec, path)?;
        sink.note(&format!(
            "[sweep] wrote a Chrome/Perfetto trace of the first cell ({events} events) to {}",
            path.display()
        ));
    }
    Ok(())
}

/// Re-runs the sweep's first `(system, load, policy)` cell with event
/// tracing and writes the Chrome `trace_event` JSON to `path` (the
/// `--trace-out` flag). One representative timeline, not one per cell: a
/// trace is an inspection artifact, and the first cell is deterministic.
///
/// # Errors
/// Propagates engine errors and file I/O failures as messages.
fn write_first_cell_trace(spec: &ShardSweepSpec, path: &std::path::Path) -> Result<usize, String> {
    let (n, m) = spec.systems[0];
    let cluster = cluster_for_system(&spec.profile, n, spec.seed, 0);
    let config = SimConfig {
        spec: cluster,
        num_dispatchers: m,
        rounds: spec.rounds,
        warmup_rounds: spec.warmup,
        seed: replication_seed(spec.seed, 0, 0, 0),
        arrivals: ArrivalSpec::PoissonOfferedLoad {
            offered_load: spec.loads[0],
        },
        services: ServiceModel::Geometric,
        measure_decision_times: false,
        histogram_metrics: spec.histogram_metrics,
        scenario: spec.scenario.clone(),
        workload: spec.workload.clone(),
    };
    let factory = factory_by_name(&spec.policies[0]).expect("validated by run_shard_sweep");
    let (_report, trace) = ShardedSimulation::new(config, spec.shards)
        .map_err(|e| e.to_string())?
        .run_traced(factory.as_ref())
        .map_err(|e| e.to_string())?;
    write_chrome_trace(path, &trace)
        .map_err(|e| format!("cannot write trace file {}: {e}", path.display()))?;
    Ok(trace.events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_sim::Simulation;

    fn quick_spec(shards: usize) -> ShardSweepSpec {
        ShardSweepSpec::resolve(&CliOptions {
            quick: true,
            shards,
            threads: Some(2),
            ..CliOptions::default()
        })
    }

    #[test]
    fn quick_sweep_produces_one_cell_per_coordinate() {
        let spec = quick_spec(2);
        let cells = run_shard_sweep(&spec).unwrap();
        assert_eq!(
            cells.len(),
            spec.systems.len() * spec.loads.len() * spec.policies.len()
        );
        for cell in &cells {
            assert!(cell.mean >= 1.0, "response times are at least one round");
        }
        let table = system_table(&cells, 16, 4);
        assert_eq!(table.num_rows(), spec.policies.len());
    }

    #[test]
    fn single_shard_sweep_matches_the_unsharded_engine() {
        let spec = quick_spec(1);
        let cells = run_shard_sweep(&spec).unwrap();
        // Recompute the first cell directly on the unsharded engine.
        let cluster = cluster_for_system(&spec.profile, 16, spec.seed, 0);
        let config = SimConfig {
            spec: cluster,
            num_dispatchers: 4,
            rounds: spec.rounds,
            warmup_rounds: spec.warmup,
            seed: replication_seed(spec.seed, 0, 0, 0),
            arrivals: ArrivalSpec::PoissonOfferedLoad {
                offered_load: spec.loads[0],
            },
            services: ServiceModel::Geometric,
            measure_decision_times: false,
            histogram_metrics: false,
            scenario: scd_sim::ScenarioSpec::default(),
            workload: scd_sim::WorkloadSpec::default(),
        };
        let factory = factory_by_name(&spec.policies[0]).unwrap();
        let report = Simulation::new(config)
            .unwrap()
            .run(factory.as_ref())
            .unwrap();
        assert_eq!(cells[0].mean, report.mean_response_time());
        assert_eq!(cells[0].p99, report.response_time_percentile(0.99) as f64);
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let mut spec = quick_spec(2);
        let a = run_shard_sweep(&spec).unwrap();
        spec.threads = 1;
        let b = run_shard_sweep(&spec).unwrap();
        spec.threads = 8;
        let c = run_shard_sweep(&spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn entry_point_writes_per_system_csv_when_requested() {
        let dir = std::env::temp_dir().join(format!("scd-sweep-test-{}", std::process::id()));
        let options = CliOptions {
            quick: true,
            shards: 2,
            threads: Some(2),
            csv: Some(dir.clone()),
            tail: true, // noted and ignored, must not fail
            ..CliOptions::default()
        };
        run_from_options(&options).unwrap();
        let written = std::fs::read_to_string(dir.join("sweep_n16m4_k2.csv")).unwrap();
        assert!(written.starts_with("load,policy,mean"), "{written}");
        assert!(written.contains("SCD"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn degraded_sweep_reports_degradation_columns() {
        let mut spec = quick_spec(2);
        spec.scenario.server_fail_rate = 0.05;
        spec.scenario.server_repair_rate = 0.2;
        spec.scenario.staleness = StalenessSpec::Fixed { k: 2 };
        let cells = run_shard_sweep(&spec).unwrap();
        assert!(cells.iter().all(|c| c.degradation.is_some()));
        let [down, _, _, _, stale, _] = cells[0].degradation.unwrap();
        assert!(down > 0.0, "a 5% fail rate over 400 rounds downs servers");
        assert!(stale > 0.0, "k=2 staleness marks decision rounds");
        let table = system_table(&cells, 16, 4);
        assert_eq!(table.num_rows(), spec.policies.len());
        // Degraded sweeps replay bit-exactly too.
        assert_eq!(cells, run_shard_sweep(&spec).unwrap());
    }

    #[test]
    fn scenario_flags_compose_file_and_overrides() {
        let dir = std::env::temp_dir().join(format!("scd-scn-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faults.scn");
        std::fs::write(&path, "server_fail_rate = 0.01\nserver_repair_rate = 0.5\n").unwrap();
        let options = CliOptions {
            scenario: Some(path),
            fail_rate: Some(0.05),
            stale_k: Some(2),
            ..CliOptions::default()
        };
        let scenario = scenario_from_options(&options).unwrap();
        assert_eq!(scenario.server_fail_rate, 0.05);
        assert_eq!(scenario.server_repair_rate, 0.5, "file value survives");
        assert_eq!(scenario.staleness, StalenessSpec::Fixed { k: 2 });
        let bare = scenario_from_options(&CliOptions {
            fail_rate: Some(0.05),
            ..CliOptions::default()
        })
        .unwrap();
        assert_eq!(bare.server_repair_rate, 0.1, "default repair is supplied");
        assert!(scenario_from_options(&CliOptions {
            scenario: Some(dir.join("missing.scn")),
            ..CliOptions::default()
        })
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn servers_flag_overrides_n_and_enables_histogram_metrics_at_scale() {
        let spec = ShardSweepSpec::resolve(&CliOptions {
            paper: true,
            servers: Some(50_000),
            ..CliOptions::default()
        });
        // Both paper systems keep their dispatcher counts; n is forced.
        assert_eq!(spec.systems, vec![(50_000, 10), (50_000, 20)]);
        assert!(spec.histogram_metrics, "50k servers is past the threshold");

        let small = ShardSweepSpec::resolve(&CliOptions {
            quick: true,
            servers: Some(32),
            ..CliOptions::default()
        });
        assert_eq!(small.systems, vec![(32, 4)]);
        assert!(
            !small.histogram_metrics,
            "small overrides keep full metrics"
        );

        // Duplicate systems created by the override collapse.
        let deduped = ShardSweepSpec::resolve(&CliOptions {
            systems: Some(vec![(100, 8), (200, 8)]),
            servers: Some(64),
            ..CliOptions::default()
        });
        assert_eq!(deduped.systems, vec![(64, 8)]);
    }

    #[test]
    fn histogram_metrics_sweep_runs_and_matches_full_metrics_statistics() {
        let mut full = quick_spec(1);
        full.systems = vec![(16, 4)];
        let mut histo = full.clone();
        histo.histogram_metrics = true;
        let a = run_shard_sweep(&full).unwrap();
        let b = run_shard_sweep(&histo).unwrap();
        // The sweep's output columns never touch per-server state, so the
        // two metric modes agree exactly.
        assert_eq!(a, b);
    }

    #[test]
    fn oversharded_systems_report_an_error() {
        let mut spec = quick_spec(64);
        spec.systems = vec![(4, 2)];
        let err = run_shard_sweep(&spec).unwrap_err();
        assert!(err.contains("shards"), "unexpected message: {err}");
    }

    #[test]
    fn unknown_policies_are_rejected_up_front() {
        let mut spec = quick_spec(1);
        spec.policies = vec!["NOPE".into()];
        assert!(run_shard_sweep(&spec).unwrap_err().contains("NOPE"));
    }
}
