//! High-level orchestration: one entry point per paper figure.
//!
//! Every figure binary is a thin wrapper around [`run_figure`]; the default,
//! `--quick` and `--paper` scales are defined here so that DESIGN.md /
//! EXPERIMENTS.md can reference them precisely.

use crate::ablation::{solver_equivalence_check, EstimatorAblation};
use crate::cli::CliOptions;
use crate::output::OutputSink;
use crate::response::ResponseTimeExperiment;
use crate::runtime::RuntimeExperiment;
use crate::sweep::effective_threads;
use crate::tail::TailExperiment;
use scd_model::RateProfile;
use std::io;

/// The figures of the paper's evaluation that this crate reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureKind {
    /// Fig. 3: response times, moderate heterogeneity, competitive policies.
    Fig3,
    /// Fig. 4: response times, high heterogeneity, competitive policies.
    Fig4,
    /// Fig. 5: decision-time distributions, moderate heterogeneity.
    Fig5,
    /// Fig. 6: response times, moderate heterogeneity, remaining baselines.
    Fig6,
    /// Fig. 7: response times, high heterogeneity, remaining baselines.
    Fig7,
    /// Fig. 8: decision-time distributions, high heterogeneity.
    Fig8,
    /// The estimator/solver ablations (not a paper figure).
    Ablation,
}

impl FigureKind {
    /// The heterogeneity profile the figure uses.
    pub fn profile(self) -> RateProfile {
        match self {
            FigureKind::Fig3 | FigureKind::Fig5 | FigureKind::Fig6 | FigureKind::Ablation => {
                RateProfile::paper_moderate()
            }
            FigureKind::Fig4 | FigureKind::Fig7 | FigureKind::Fig8 => RateProfile::paper_high(),
        }
    }

    /// The policy set the figure compares.
    pub fn policies(self) -> Vec<String> {
        let names: &[&str] = match self {
            FigureKind::Fig3 | FigureKind::Fig4 => {
                &["SCD", "TWF", "JSQ", "SED", "hJSQ(2)", "hJIQ", "hLSQ"]
            }
            FigureKind::Fig6 | FigureKind::Fig7 => &["SCD", "JSQ(2)", "JIQ", "LSQ", "WR"],
            FigureKind::Fig5 | FigureKind::Fig8 => &["SCD", "SCD(alg1)", "JSQ", "SED"],
            FigureKind::Ablation => &["SCD"],
        };
        names.iter().map(|s| s.to_string()).collect()
    }

    /// A short label used for output files.
    pub fn label(self) -> &'static str {
        match self {
            FigureKind::Fig3 => "fig3",
            FigureKind::Fig4 => "fig4",
            FigureKind::Fig5 => "fig5",
            FigureKind::Fig6 => "fig6",
            FigureKind::Fig7 => "fig7",
            FigureKind::Fig8 => "fig8",
            FigureKind::Ablation => "ablation",
        }
    }
}

/// The fully resolved parameters of one figure run.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// Which figure.
    pub kind: FigureKind,
    /// Rounds per simulation run.
    pub rounds: u64,
    /// Warm-up rounds excluded from statistics.
    pub warmup: u64,
    /// Master seed.
    pub seed: u64,
    /// `(n, m)` systems for the load sweep.
    pub systems: Vec<(usize, usize)>,
    /// Offered loads for the load sweep.
    pub loads: Vec<f64>,
    /// Offered loads for the tail sub-figure.
    pub tail_loads: Vec<f64>,
    /// The `(n, m)` system used for the tail sub-figure.
    pub tail_system: (usize, usize),
    /// Cluster sizes for decision-time figures.
    pub cluster_sizes: Vec<usize>,
    /// Whether to run the tail part.
    pub include_tail: bool,
    /// Worker threads.
    pub threads: usize,
    /// Independent replications per response-time sweep cell.
    pub replications: usize,
}

impl FigureSpec {
    /// Resolves a figure and CLI options into concrete parameters.
    pub fn resolve(kind: FigureKind, options: &CliOptions) -> Self {
        // Three scale presets. The paper preset matches Section 6; the
        // default preset keeps a full-figure run in the minutes range on a
        // laptop; quick is a smoke test.
        let (rounds, warmup, systems, loads, tail_loads, cluster_sizes) = if options.paper {
            (
                100_000u64,
                0u64,
                vec![(100, 5), (100, 10), (200, 10), (200, 20)],
                vec![0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 0.99],
                vec![0.70, 0.90, 0.99],
                vec![100, 200, 300, 400],
            )
        } else if options.quick {
            (
                300u64,
                50u64,
                vec![(20, 3)],
                vec![0.7, 0.9],
                vec![0.9],
                vec![20, 40],
            )
        } else {
            (
                10_000u64,
                1_000u64,
                vec![(100, 10)],
                vec![0.60, 0.70, 0.80, 0.90, 0.95, 0.99],
                vec![0.70, 0.90, 0.99],
                vec![100, 200, 300, 400],
            )
        };

        let systems = options.systems.clone().unwrap_or(systems);
        let loads = options.loads.clone().unwrap_or(loads);
        let tail_system = *systems
            .iter()
            .find(|&&(n, m)| (n, m) == (100, 10))
            .unwrap_or(&systems[0]);

        FigureSpec {
            kind,
            rounds: options.rounds.unwrap_or(rounds),
            warmup: options.rounds.map(|r| r / 10).unwrap_or(warmup),
            seed: options.seed,
            systems,
            loads,
            tail_loads,
            tail_system,
            cluster_sizes,
            include_tail: options.tail || options.paper,
            threads: effective_threads(options.threads),
            replications: options.replications.max(1),
        }
    }
}

/// Runs one figure end to end (simulation + output).
///
/// # Errors
/// Propagates output I/O failures.
pub fn run_figure(kind: FigureKind, options: &CliOptions) -> io::Result<()> {
    let spec = FigureSpec::resolve(kind, options);
    let sink = OutputSink::from_option(options.csv.as_deref())?;
    sink.note(&format!(
        "[{}] profile={:?} rounds={} seed={} threads={}",
        spec.kind.label(),
        spec.kind.profile(),
        spec.rounds,
        spec.seed,
        spec.threads
    ));
    if options.shards > 1 {
        sink.note("--shards applies to the sweep binary; figure sweeps run the unsharded engine");
    }

    match kind {
        FigureKind::Fig3 | FigureKind::Fig4 | FigureKind::Fig6 | FigureKind::Fig7 => {
            let experiment = ResponseTimeExperiment {
                profile: kind.profile(),
                policies: kind.policies(),
                systems: spec.systems.clone(),
                loads: spec.loads.clone(),
                rounds: spec.rounds,
                warmup: spec.warmup,
                seed: spec.seed,
                replications: spec.replications,
            };
            let results = experiment.run(spec.threads);
            experiment.emit(&results, kind.label(), &sink)?;

            if spec.include_tail {
                let tail = TailExperiment {
                    profile: kind.profile(),
                    policies: kind.policies(),
                    system: spec.tail_system,
                    loads: spec.tail_loads.clone(),
                    rounds: spec.rounds,
                    warmup: spec.warmup,
                    seed: spec.seed,
                    replications: spec.replications,
                };
                let tail_results = tail.run(spec.threads);
                tail.emit(&tail_results, kind.label(), &sink)?;
            }
        }
        FigureKind::Fig5 | FigureKind::Fig8 => {
            if spec.replications > 1 {
                sink.note(
                    "--replications applies to response-time sweeps; \
                     decision-time measurement runs a single replication",
                );
            }
            let experiment = RuntimeExperiment {
                profile: kind.profile(),
                cluster_sizes: spec.cluster_sizes.clone(),
                dispatchers: 10,
                offered_load: 0.99,
                policies: kind.policies(),
                rounds: spec.rounds.min(5_000),
                seed: spec.seed,
            };
            let mut results = experiment.run(spec.threads);
            experiment.emit(&mut results, kind.label(), &sink)?;
        }
        FigureKind::Ablation => {
            if spec.replications > 1 {
                sink.note(
                    "--replications applies to response-time sweeps; \
                     the ablation runs a single replication",
                );
            }
            let (n, m) = spec.tail_system;
            let ablation = EstimatorAblation {
                profile: kind.profile(),
                n,
                m,
                loads: spec.loads.clone(),
                rounds: spec.rounds,
                warmup: spec.warmup,
                seed: spec.seed,
            };
            let rows = ablation.run(spec.threads);
            ablation.emit(&rows, &sink)?;

            let (fast, quad) = solver_equivalence_check(
                &kind.profile(),
                n.min(50),
                m,
                0.95,
                spec.rounds.min(2_000),
                spec.seed,
            );
            sink.note(&format!(
                "solver equivalence: Algorithm 4 mean RT = {fast:.4}, Algorithm 1 mean RT = {quad:.4}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_metadata_matches_the_paper() {
        assert_eq!(FigureKind::Fig3.profile(), RateProfile::paper_moderate());
        assert_eq!(FigureKind::Fig4.profile(), RateProfile::paper_high());
        assert_eq!(FigureKind::Fig8.profile(), RateProfile::paper_high());
        assert!(FigureKind::Fig3.policies().contains(&"hLSQ".to_string()));
        assert!(FigureKind::Fig6.policies().contains(&"WR".to_string()));
        assert!(FigureKind::Fig5
            .policies()
            .contains(&"SCD(alg1)".to_string()));
        assert_eq!(FigureKind::Fig7.label(), "fig7");
    }

    #[test]
    fn paper_preset_matches_section6() {
        let options = CliOptions {
            paper: true,
            ..CliOptions::default()
        };
        let spec = FigureSpec::resolve(FigureKind::Fig3, &options);
        assert_eq!(spec.rounds, 100_000);
        assert_eq!(spec.systems.len(), 4);
        assert!(spec.systems.contains(&(200, 20)));
        assert_eq!(spec.tail_system, (100, 10));
        assert_eq!(spec.cluster_sizes, vec![100, 200, 300, 400]);
        assert!(spec.include_tail);
    }

    #[test]
    fn cli_overrides_take_precedence() {
        let options = CliOptions {
            rounds: Some(500),
            loads: Some(vec![0.8]),
            systems: Some(vec![(10, 2)]),
            ..CliOptions::default()
        };
        let spec = FigureSpec::resolve(FigureKind::Fig6, &options);
        assert_eq!(spec.rounds, 500);
        assert_eq!(spec.warmup, 50);
        assert_eq!(spec.loads, vec![0.8]);
        assert_eq!(spec.systems, vec![(10, 2)]);
        assert_eq!(spec.tail_system, (10, 2));
    }

    #[test]
    fn quick_runs_complete_end_to_end() {
        let options = CliOptions {
            quick: true,
            threads: Some(2),
            ..CliOptions::default()
        };
        run_figure(FigureKind::Fig3, &options).unwrap();
        run_figure(FigureKind::Fig5, &options).unwrap();
        run_figure(FigureKind::Ablation, &options).unwrap();
    }
}
