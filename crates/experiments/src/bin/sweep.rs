//! Sharded policy sweep: runs a `(system × load × policy)` grid on the
//! sharded round engine (`--shards k`) and prints per-system comparison
//! tables. See `--help` for flags.

use scd_experiments::shard_sweep::run_from_options;
use scd_experiments::CliOptions;

fn main() {
    let options = CliOptions::from_env();
    if let Err(err) = run_from_options(&options) {
        eprintln!("sweep failed: {err}");
        std::process::exit(1);
    }
}
