//! Reproduces Figure 7 of the paper. See `--help` for flags.

use scd_experiments::figures::{run_figure, FigureKind};
use scd_experiments::CliOptions;

fn main() {
    let options = CliOptions::from_env();
    if let Err(err) = run_figure(FigureKind::Fig7, &options) {
        eprintln!("figure 7 failed: {err}");
        std::process::exit(1);
    }
}
