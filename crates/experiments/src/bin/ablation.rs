//! Runs the estimator and solver ablations described in DESIGN.md.

use scd_experiments::figures::{run_figure, FigureKind};
use scd_experiments::CliOptions;

fn main() {
    let options = CliOptions::from_env();
    if let Err(err) = run_figure(FigureKind::Ablation, &options) {
        eprintln!("ablation failed: {err}");
        std::process::exit(1);
    }
}
