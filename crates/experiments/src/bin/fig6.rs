//! Reproduces Figure 6 of the paper. See `--help` for flags.

use scd_experiments::figures::{run_figure, FigureKind};
use scd_experiments::CliOptions;

fn main() {
    let options = CliOptions::from_env();
    if let Err(err) = run_figure(FigureKind::Fig6, &options) {
        eprintln!("figure 6 failed: {err}");
        std::process::exit(1);
    }
}
