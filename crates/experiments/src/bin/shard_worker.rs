//! One shard of one run, as a supervised OS process.
//!
//! Spawned by the `orchestrate` binary (or the `sweep` binary's
//! `--processes` mode), not meant to be run by hand: it expects
//! `--shard N --shards K --policy NAME --expect-seed S --digest D` plus
//! optional fault-injection flags on the command line, the shard's
//! `key = value` configuration on stdin, and answers with exactly one
//! checksummed report frame on stdout. Exit code 0 means the frame is
//! complete; anything else is classified by the orchestrator.

use scd_experiments::fabric::worker_main;

fn main() {
    match worker_main(std::env::args().skip(1)) {
        Ok(code) => std::process::exit(code),
        Err(message) => {
            eprintln!("shard_worker: {message}");
            std::process::exit(2);
        }
    }
}
