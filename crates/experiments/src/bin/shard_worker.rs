//! One shard of one run, as a supervised OS process.
//!
//! Spawned by the `orchestrate` binary (or the `sweep` binary's
//! `--processes` mode), not meant to be run by hand: it expects
//! `--shard N --shards K --policy NAME --expect-seed S --digest D` plus
//! optional streaming (`--checkpoint-every R`, `--resume-from stdin`) and
//! fault-injection flags on the command line, the shard's `key = value`
//! configuration (and, when resuming, a checkpoint frame after the
//! `%%CHECKPOINT%%` delimiter line) on stdin, and answers with checksummed
//! frames on stdout. Exit code 0 means the final frame is complete; 3
//! means the configuration was rejected (don't retry); 4 means the resume
//! checkpoint was refused (retry from seed); anything else is classified
//! by the orchestrator.

use scd_experiments::fabric::worker_main;

fn main() {
    match worker_main(std::env::args().skip(1)) {
        Ok(code) => std::process::exit(code),
        Err(exit) => {
            eprintln!("shard_worker: {}", exit.message);
            std::process::exit(exit.code);
        }
    }
}
