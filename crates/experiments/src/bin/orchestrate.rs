//! Fault-tolerant multi-process shard run.
//!
//! Spawns `--processes K` supervised `shard_worker` processes, distributes
//! each shard's configuration and sub-master seed, retries crashed, hung,
//! or corrupted workers from their seeds with deterministic backoff, and
//! merges whatever survives — accounting lost shards in the degradation
//! metrics instead of failing the run. `--verify-inprocess` re-runs the
//! same configuration on the in-process sharded engine and fails unless
//! the merged reports are bit-identical; the fault-injection flags
//! (`--inject-crash N`, `--inject-hang N`, `--inject-corrupt N`,
//! `--persistent`) exist to prove, in CI, that recovery preserves that
//! guarantee.

use scd_experiments::fabric::{run_orchestrate, OrchestrateOptions};

fn main() {
    let options = match OrchestrateOptions::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    if let Err(message) = run_orchestrate(&options) {
        eprintln!("orchestrate: {message}");
        std::process::exit(1);
    }
}
