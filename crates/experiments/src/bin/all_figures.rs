//! Runs every figure reproduction back to back (Figures 3-8 plus the
//! ablations). Intended to be used with `--quick` or `--csv` for a full
//! regeneration pass.

use scd_experiments::figures::{run_figure, FigureKind};
use scd_experiments::CliOptions;

fn main() {
    let options = CliOptions::from_env();
    let figures = [
        FigureKind::Fig3,
        FigureKind::Fig4,
        FigureKind::Fig5,
        FigureKind::Fig6,
        FigureKind::Fig7,
        FigureKind::Fig8,
        FigureKind::Ablation,
    ];
    for kind in figures {
        if let Err(err) = run_figure(kind, &options) {
            eprintln!("{kind:?} failed: {err}");
            std::process::exit(1);
        }
    }
}
