//! Minimal command-line option parsing shared by all figure binaries.
//!
//! A hand-rolled parser keeps the workspace free of an argument-parsing
//! dependency; the flag surface is tiny and identical across binaries.

use std::path::PathBuf;

/// Options common to every figure binary.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Number of simulated rounds per run (None → the figure's default).
    pub rounds: Option<u64>,
    /// Master seed.
    pub seed: u64,
    /// Offered loads to sweep (None → the figure's default).
    pub loads: Option<Vec<f64>>,
    /// `(n, m)` systems to simulate (None → the figure's default).
    pub systems: Option<Vec<(usize, usize)>>,
    /// Override the server count `n` of every selected system, keeping each
    /// system's dispatcher count `m`. This is the mean-field scale knob: it
    /// composes with `--quick`/`--paper`/`--systems`, so
    /// `sweep --quick --servers 100000` runs the quick grid at n = 10⁵. At
    /// such sizes the sweep switches queue metrics to histogram-only mode.
    pub servers: Option<usize>,
    /// Use the paper's full-scale setup (10⁵ rounds, all four systems).
    pub paper: bool,
    /// Use a smoke-test-sized setup (few hundred rounds, one small system).
    pub quick: bool,
    /// Directory to which CSV series are written.
    pub csv: Option<PathBuf>,
    /// Also run the response-time-tail part of the figure.
    pub tail: bool,
    /// Number of worker threads (None → all available cores).
    pub threads: Option<usize>,
    /// Independent replications per sweep cell. Mean-response-time sweeps
    /// average across them; tail sweeps merge the histograms (deeper CCDF
    /// resolution); decision-time and ablation figures note and ignore the
    /// flag.
    pub replications: usize,
    /// Number of server shards `k` per simulation (the `sweep` binary runs
    /// every cell on the sharded round engine and merges the per-shard
    /// reports; `1` is bit-identical to the unsharded engine). Figure
    /// binaries note and ignore the flag.
    pub shards: usize,
    /// Run every simulation as this many supervised `shard_worker` OS
    /// processes instead of in-process shards (the `sweep` binary only;
    /// bit-identical to `--shards K` when no worker is lost). Figure
    /// binaries note and ignore the flag.
    pub processes: Option<usize>,
    /// Heartbeat deadline in milliseconds for `--processes` workers: the
    /// longest allowed gap between consecutive frames on a worker's
    /// stdout (with `--checkpoint-every 0` a worker emits exactly one
    /// frame, so this degenerates to a per-attempt wall clock). Figure
    /// binaries note and ignore the flag.
    pub worker_timeout_ms: u64,
    /// Retry budget per shard after the first attempt in `--processes`
    /// mode. Figure binaries note and ignore the flag.
    pub max_retries: u32,
    /// Stream a progress/checkpoint frame pair every this many rounds in
    /// `--processes` mode, letting failed workers restart from their last
    /// verified checkpoint instead of from seed. `0` (the default) keeps
    /// the legacy one-shot worker protocol. Figure binaries note and
    /// ignore the flag.
    pub checkpoint_every: u64,
    /// Scenario file (`key = value` lines) describing faults, churn,
    /// staleness and probe loss for the `sweep` binary. Figure binaries note
    /// and ignore the flag.
    pub scenario: Option<PathBuf>,
    /// Fixed snapshot staleness `k` in rounds (overrides the scenario file's
    /// staleness when both are given).
    pub stale_k: Option<u64>,
    /// Per-round per-server crash probability (overrides the scenario file's
    /// `server_fail_rate`; a default repair rate of 0.1 is supplied when the
    /// scenario would otherwise never repair).
    pub fail_rate: Option<f64>,
    /// Workload file (`key = value` lines) describing MMPP/diurnal/flash
    /// modulation and job-size classes for the `sweep` binary. Figure
    /// binaries note and ignore the flag.
    pub workload: Option<PathBuf>,
    /// File to which the `sweep` binary writes a Chrome/Perfetto
    /// `trace_event` JSON timeline of one representative run.
    pub trace_out: Option<PathBuf>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            rounds: None,
            seed: 2021,
            loads: None,
            systems: None,
            servers: None,
            paper: false,
            quick: false,
            csv: None,
            tail: false,
            threads: None,
            replications: 1,
            shards: 1,
            processes: None,
            worker_timeout_ms: 120_000,
            max_retries: 2,
            checkpoint_every: 0,
            scenario: None,
            stale_k: None,
            fail_rate: None,
            workload: None,
            trace_out: None,
        }
    }
}

impl CliOptions {
    /// Parses options from an iterator of argument strings (without the
    /// program name).
    ///
    /// # Errors
    /// Returns a human-readable message for unknown flags or malformed
    /// values.
    pub fn parse<I>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut options = CliOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--rounds" => {
                    let value = iter.next().ok_or("--rounds requires a value")?;
                    options.rounds = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("invalid --rounds value: {value}"))?,
                    );
                }
                "--seed" => {
                    let value = iter.next().ok_or("--seed requires a value")?;
                    options.seed = value
                        .parse::<u64>()
                        .map_err(|_| format!("invalid --seed value: {value}"))?;
                }
                "--loads" => {
                    let value = iter.next().ok_or("--loads requires a value")?;
                    options.loads = Some(parse_loads(&value)?);
                }
                "--systems" => {
                    let value = iter.next().ok_or("--systems requires a value")?;
                    options.systems = Some(parse_systems(&value)?);
                }
                "--servers" => {
                    let value = iter.next().ok_or("--servers requires a value")?;
                    let parsed = value
                        .parse::<usize>()
                        .map_err(|_| format!("invalid --servers value: {value}"))?;
                    if parsed == 0 {
                        return Err("--servers must be at least 1".to_string());
                    }
                    options.servers = Some(parsed);
                }
                "--threads" => {
                    let value = iter.next().ok_or("--threads requires a value")?;
                    options.threads = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| format!("invalid --threads value: {value}"))?,
                    );
                }
                "--replications" => {
                    let value = iter.next().ok_or("--replications requires a value")?;
                    let parsed = value
                        .parse::<usize>()
                        .map_err(|_| format!("invalid --replications value: {value}"))?;
                    if parsed == 0 {
                        return Err("--replications must be at least 1".to_string());
                    }
                    options.replications = parsed;
                }
                "--shards" => {
                    let value = iter.next().ok_or("--shards requires a value")?;
                    let parsed = value
                        .parse::<usize>()
                        .map_err(|_| format!("invalid --shards value: {value}"))?;
                    if parsed == 0 {
                        return Err("--shards must be at least 1".to_string());
                    }
                    options.shards = parsed;
                }
                "--processes" => {
                    let value = iter.next().ok_or("--processes requires a value")?;
                    let parsed = value
                        .parse::<usize>()
                        .map_err(|_| format!("invalid --processes value: {value}"))?;
                    if parsed == 0 {
                        return Err("--processes must be at least 1".to_string());
                    }
                    options.processes = Some(parsed);
                }
                "--worker-timeout" => {
                    let value = iter.next().ok_or("--worker-timeout requires a value")?;
                    let parsed = value
                        .parse::<u64>()
                        .map_err(|_| format!("invalid --worker-timeout value: {value}"))?;
                    if parsed == 0 {
                        return Err("--worker-timeout must be at least 1 ms".to_string());
                    }
                    options.worker_timeout_ms = parsed;
                }
                "--max-retries" => {
                    let value = iter.next().ok_or("--max-retries requires a value")?;
                    options.max_retries = value
                        .parse::<u32>()
                        .map_err(|_| format!("invalid --max-retries value: {value}"))?;
                }
                "--checkpoint-every" => {
                    let value = iter.next().ok_or("--checkpoint-every requires a value")?;
                    options.checkpoint_every = value
                        .parse::<u64>()
                        .map_err(|_| format!("invalid --checkpoint-every value: {value}"))?;
                }
                "--csv" => {
                    let value = iter.next().ok_or("--csv requires a directory")?;
                    options.csv = Some(PathBuf::from(value));
                }
                "--scenario" => {
                    let value = iter.next().ok_or("--scenario requires a file")?;
                    options.scenario = Some(PathBuf::from(value));
                }
                "--workload" => {
                    let value = iter.next().ok_or("--workload requires a file")?;
                    options.workload = Some(PathBuf::from(value));
                }
                "--trace-out" => {
                    let value = iter.next().ok_or("--trace-out requires a file")?;
                    options.trace_out = Some(PathBuf::from(value));
                }
                "--stale-k" => {
                    let value = iter.next().ok_or("--stale-k requires a value")?;
                    options.stale_k = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("invalid --stale-k value: {value}"))?,
                    );
                }
                "--fail-rate" => {
                    let value = iter.next().ok_or("--fail-rate requires a value")?;
                    let parsed = value
                        .parse::<f64>()
                        .map_err(|_| format!("invalid --fail-rate value: {value}"))?;
                    if !(0.0..1.0).contains(&parsed) {
                        return Err(format!("--fail-rate must be in [0, 1): {value}"));
                    }
                    options.fail_rate = Some(parsed);
                }
                "--paper" => options.paper = true,
                "--quick" => options.quick = true,
                "--tail" => options.tail = true,
                "--help" | "-h" => {
                    return Err(usage());
                }
                other => return Err(format!("unknown flag {other}\n{}", usage())),
            }
        }
        if options.paper && options.quick {
            return Err("--paper and --quick are mutually exclusive".to_string());
        }
        Ok(options)
    }

    /// Parses the process arguments, printing usage and exiting on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }
}

/// The usage string shared by all binaries.
pub fn usage() -> String {
    "usage: <figure-binary> [--rounds N] [--seed S] [--loads 0.7,0.9,0.99] \
     [--systems 100x10,200x20] [--servers N] [--threads T] [--replications R] [--shards K] \
     [--processes K] [--worker-timeout MS] [--max-retries R] [--checkpoint-every ROUNDS] \
     [--csv DIR] [--scenario FILE] [--stale-k K] [--fail-rate R] \
     [--workload FILE] [--trace-out FILE] [--paper | --quick] [--tail]"
        .to_string()
}

fn parse_loads(value: &str) -> Result<Vec<f64>, String> {
    let loads: Result<Vec<f64>, _> = value.split(',').map(|s| s.trim().parse::<f64>()).collect();
    let loads = loads.map_err(|_| format!("invalid --loads value: {value}"))?;
    if loads.is_empty() || loads.iter().any(|&l| l <= 0.0 || l >= 1.5) {
        return Err(format!("loads must be in (0, 1.5): {value}"));
    }
    Ok(loads)
}

fn parse_systems(value: &str) -> Result<Vec<(usize, usize)>, String> {
    value
        .split(',')
        .map(|pair| {
            let (n, m) = pair
                .trim()
                .split_once(['x', 'X'])
                .ok_or_else(|| format!("invalid --systems entry (expected NxM): {pair}"))?;
            let n = n
                .parse::<usize>()
                .map_err(|_| format!("invalid server count in {pair}"))?;
            let m = m
                .parse::<usize>()
                .map_err(|_| format!("invalid dispatcher count in {pair}"))?;
            if n == 0 || m == 0 {
                return Err(format!("systems must be non-empty: {pair}"));
            }
            Ok((n, m))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        CliOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_arguments() {
        let options = parse(&[]).unwrap();
        assert_eq!(options, CliOptions::default());
    }

    #[test]
    fn parses_all_flags() {
        let options = parse(&[
            "--rounds",
            "5000",
            "--seed",
            "7",
            "--loads",
            "0.7,0.9",
            "--systems",
            "100x10,200x20",
            "--servers",
            "100000",
            "--threads",
            "4",
            "--replications",
            "5",
            "--shards",
            "4",
            "--processes",
            "4",
            "--worker-timeout",
            "30000",
            "--max-retries",
            "5",
            "--checkpoint-every",
            "250",
            "--csv",
            "/tmp/out",
            "--scenario",
            "/tmp/faults.scn",
            "--stale-k",
            "3",
            "--fail-rate",
            "0.05",
            "--workload",
            "/tmp/bursty.workload",
            "--trace-out",
            "/tmp/trace.json",
            "--paper",
            "--tail",
        ])
        .unwrap();
        assert_eq!(options.rounds, Some(5000));
        assert_eq!(options.seed, 7);
        assert_eq!(options.loads, Some(vec![0.7, 0.9]));
        assert_eq!(options.systems, Some(vec![(100, 10), (200, 20)]));
        assert_eq!(options.servers, Some(100_000));
        assert_eq!(options.threads, Some(4));
        assert_eq!(options.replications, 5);
        assert_eq!(options.shards, 4);
        assert_eq!(options.processes, Some(4));
        assert_eq!(options.worker_timeout_ms, 30_000);
        assert_eq!(options.max_retries, 5);
        assert_eq!(options.checkpoint_every, 250);
        assert_eq!(options.csv, Some(PathBuf::from("/tmp/out")));
        assert_eq!(options.scenario, Some(PathBuf::from("/tmp/faults.scn")));
        assert_eq!(options.stale_k, Some(3));
        assert_eq!(options.fail_rate, Some(0.05));
        assert_eq!(
            options.workload,
            Some(PathBuf::from("/tmp/bursty.workload"))
        );
        assert_eq!(options.trace_out, Some(PathBuf::from("/tmp/trace.json")));
        assert!(options.paper);
        assert!(options.tail);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--rounds"]).is_err());
        assert!(parse(&["--rounds", "abc"]).is_err());
        assert!(parse(&["--loads", "2.7"]).is_err());
        assert!(parse(&["--systems", "100-10"]).is_err());
        assert!(parse(&["--systems", "0x10"]).is_err());
        assert!(parse(&["--replications", "0"]).is_err());
        assert!(parse(&["--replications", "x"]).is_err());
        assert!(parse(&["--servers", "0"]).is_err());
        assert!(parse(&["--servers", "x"]).is_err());
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--shards", "x"]).is_err());
        assert!(parse(&["--processes", "0"]).is_err());
        assert!(parse(&["--processes", "x"]).is_err());
        assert!(parse(&["--worker-timeout", "0"]).is_err());
        assert!(parse(&["--worker-timeout", "x"]).is_err());
        assert!(parse(&["--max-retries", "x"]).is_err());
        assert!(parse(&["--checkpoint-every", "x"]).is_err());
        assert!(parse(&["--scenario"]).is_err());
        assert!(parse(&["--workload"]).is_err());
        assert!(parse(&["--trace-out"]).is_err());
        assert!(parse(&["--stale-k", "x"]).is_err());
        assert!(parse(&["--fail-rate", "1.0"]).is_err());
        assert!(parse(&["--fail-rate", "-0.1"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--paper", "--quick"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
