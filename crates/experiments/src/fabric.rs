//! CLI-side wiring of the multi-process shard fabric.
//!
//! The library half of the fabric (frame codec, worker body, supervising
//! orchestrator) lives in [`scd_sim::fabric`] and is policy-agnostic. This
//! module binds it to the experiments crate's policy registry and flag
//! conventions, and is shared by two thin binaries:
//!
//! * `shard_worker` — one shard per process; parses the worker flag set
//!   ([`parse_worker_args`]), reads its configuration (and, under
//!   `--resume-from stdin`, a retained checkpoint frame) from stdin, and
//!   streams checksummed frames on stdout — one legacy v2 report frame
//!   when `--checkpoint-every` is absent or zero, a progress/checkpoint
//!   pair every `R` rounds plus a v3 final frame otherwise. Exit codes are
//!   part of the protocol: `0` frame complete, [`EXIT_CONFIG_REJECTED`]
//!   the configuration is unusable (the orchestrator does not retry),
//!   [`EXIT_RESUME_REJECTED`] the resume checkpoint was refused (the
//!   orchestrator drops it and retries from seed), `2` anything else.
//! * `orchestrate` — the supervisor; runs one configuration as
//!   `--processes K` workers with retries, heartbeat timeouts and
//!   optional checkpoint streaming ([`run_orchestrate`]), optionally
//!   injecting faults and verifying the merged result against the
//!   in-process sharded engine.
//!
//! The `sweep` binary's `--processes K` flag reuses [`fabric_run`] to route
//! every grid cell through worker processes instead of in-process shards.

use crate::response::cluster_for_system;
use scd_model::RateProfile;
use scd_policies::factory_by_name;
use scd_sim::fabric::{
    run_fabric, run_worker, FabricOutcome, FabricSpec, InjectedFault, WorkerFaultPlan,
    WorkerOutput, WorkerSpec, EXIT_CONFIG_REJECTED, EXIT_RESUME_REJECTED, RESUME_DELIMITER,
};
use scd_sim::{ArrivalSpec, ShardedSimulation, SimConfig, SimError};
use std::path::PathBuf;
use std::time::Duration;

/// Locates the `shard_worker` binary next to the running executable.
///
/// Binaries land in `target/<profile>/`, integration-test executables in
/// `target/<profile>/deps/`, so the sibling directory and its parent are
/// both probed.
///
/// # Errors
/// Returns a message naming the probed locations when the worker is not
/// found (it is built by any full `cargo build`/`cargo test` of the
/// workspace).
pub fn worker_binary_path() -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate this binary: {e}"))?;
    let name = format!("shard_worker{}", std::env::consts::EXE_SUFFIX);
    let mut probed = Vec::new();
    let mut dir = exe.parent();
    for _ in 0..2 {
        let Some(d) = dir else { break };
        let candidate = d.join(&name);
        if candidate.is_file() {
            return Ok(candidate);
        }
        probed.push(candidate.display().to_string());
        dir = d.parent();
    }
    Err(format!(
        "shard_worker binary not found (probed {}); build it with `cargo build --bins`",
        probed.join(", ")
    ))
}

/// Runs one configuration across `processes` supervised worker processes
/// and returns the fabric outcome — the sweep's per-cell fabric path.
///
/// `timeout` is the heartbeat deadline (per-frame inter-arrival bound;
/// per-attempt wall clock when `checkpoint_every == 0`), `max_retries`
/// the restart budget per shard, and `checkpoint_every` the streaming
/// cadence in rounds (0 = legacy one-shot protocol).
///
/// # Errors
/// Propagates worker-location and fabric errors as messages.
pub fn fabric_run(
    config: &SimConfig,
    policy: &str,
    processes: usize,
    timeout: Duration,
    max_retries: u32,
    checkpoint_every: u64,
) -> Result<FabricOutcome, String> {
    let mut spec = FabricSpec::new(worker_binary_path()?, policy, processes);
    spec.timeout = timeout;
    spec.max_retries = max_retries;
    spec.checkpoint_every = checkpoint_every;
    run_fabric(config, &spec).map_err(|e| e.to_string())
}

/// Parses the `shard_worker` flag set: `--shard N --shards K --policy NAME
/// --expect-seed S --digest D`, the streaming flags `--checkpoint-every R`
/// and `--resume-from stdin`, plus the fault-injection flags of
/// [`WorkerFaultPlan`]. Returns the worker spec and the policy name.
///
/// # Errors
/// Returns a human-readable message for unknown flags, malformed values,
/// or missing required flags.
pub fn parse_worker_args<I>(args: I) -> Result<(WorkerSpec, String), String>
where
    I: IntoIterator<Item = String>,
{
    let mut shard: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut policy: Option<String> = None;
    let mut expect_seed: Option<u64> = None;
    let mut digest: Option<u64> = None;
    let mut checkpoint_every: u64 = 0;
    let mut resume_from_stdin = false;
    let mut fault = WorkerFaultPlan::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--shard" => {
                let v = value_of("--shard")?;
                shard = Some(v.parse().map_err(|_| format!("invalid --shard: {v}"))?);
            }
            "--shards" => {
                let v = value_of("--shards")?;
                shards = Some(v.parse().map_err(|_| format!("invalid --shards: {v}"))?);
            }
            "--policy" => policy = Some(value_of("--policy")?),
            "--expect-seed" => {
                let v = value_of("--expect-seed")?;
                expect_seed = Some(
                    v.parse()
                        .map_err(|_| format!("invalid --expect-seed: {v}"))?,
                );
            }
            "--digest" => {
                let v = value_of("--digest")?;
                digest = Some(v.parse().map_err(|_| format!("invalid --digest: {v}"))?);
            }
            "--checkpoint-every" => {
                let v = value_of("--checkpoint-every")?;
                checkpoint_every = v
                    .parse()
                    .map_err(|_| format!("invalid --checkpoint-every: {v}"))?;
            }
            "--resume-from" => {
                let v = value_of("--resume-from")?;
                if v != "stdin" {
                    return Err(format!(
                        "invalid --resume-from: {v} (only `stdin` is supported)"
                    ));
                }
                resume_from_stdin = true;
            }
            "--fail-after-round" => {
                let v = value_of("--fail-after-round")?;
                fault.fail_after_round = Some(
                    v.parse()
                        .map_err(|_| format!("invalid --fail-after-round: {v}"))?,
                );
            }
            "--fail-after-checkpoint" => {
                let v = value_of("--fail-after-checkpoint")?;
                fault.fail_after_checkpoint = Some(
                    v.parse()
                        .map_err(|_| format!("invalid --fail-after-checkpoint: {v}"))?,
                );
            }
            "--hang" => fault.hang = true,
            "--corrupt-frame" => fault.corrupt_frame = true,
            "--truncate-frame" => fault.truncate_frame = true,
            "--exit-code" => {
                let v = value_of("--exit-code")?;
                fault.exit_code = Some(v.parse().map_err(|_| format!("invalid --exit-code: {v}"))?);
            }
            other => return Err(format!("unknown shard_worker flag {other}")),
        }
    }
    fn require<T>(value: Option<T>, name: &str) -> Result<T, String> {
        value.ok_or_else(|| format!("shard_worker requires {name}"))
    }
    let spec = WorkerSpec {
        shard: require(shard, "--shard")?,
        num_shards: require(shards, "--shards")?,
        expect_seed: require(expect_seed, "--expect-seed")?,
        config_digest: require(digest, "--digest")?,
        checkpoint_every,
        resume_from_stdin,
        fault,
    };
    Ok((spec, require(policy, "--policy")?))
}

/// Exit disposition of the `shard_worker` binary when something goes
/// wrong: the process exit code (part of the orchestrator protocol — see
/// [`EXIT_CONFIG_REJECTED`] and [`EXIT_RESUME_REJECTED`]) plus a
/// stderr message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerExit {
    /// Process exit code the binary should terminate with.
    pub code: i32,
    /// Human-readable cause, for stderr.
    pub message: String,
}

impl WorkerExit {
    /// A launch-level failure (bad flags, unknown policy, broken pipes):
    /// exit 2, the generic verdict the orchestrator retries.
    fn launch(message: String) -> Self {
        WorkerExit { code: 2, message }
    }

    /// Maps a simulation error onto the protocol's exit codes: an
    /// unusable configuration is fatal-no-retry, a refused resume
    /// checkpoint asks the orchestrator to fall back to seed, everything
    /// else is a generic failure.
    fn classify(error: &SimError) -> Self {
        let code = match error {
            SimError::InvalidConfig(_) => EXIT_CONFIG_REJECTED,
            SimError::Checkpoint(_) => EXIT_RESUME_REJECTED,
            _ => 2,
        };
        WorkerExit {
            code,
            message: error.to_string(),
        }
    }
}

/// Splits the worker's stdin into the configuration text and, under
/// `--resume-from stdin`, the raw checkpoint frame that follows the
/// [`RESUME_DELIMITER`] line.
fn split_resume_payload(stdin: &[u8], resume: bool) -> Result<(&[u8], Option<&[u8]>), WorkerExit> {
    if !resume {
        return Ok((stdin, None));
    }
    let delimiter = format!("{RESUME_DELIMITER}\n");
    let needle = delimiter.as_bytes();
    // The delimiter occupies a line of its own: match it at the start of
    // stdin or right after a newline, never mid-line.
    for at in 0..stdin.len().saturating_sub(needle.len() - 1) {
        if stdin[at..].starts_with(needle) && (at == 0 || stdin[at - 1] == b'\n') {
            return Ok((&stdin[..at], Some(&stdin[at + needle.len()..])));
        }
    }
    Err(WorkerExit {
        code: EXIT_RESUME_REJECTED,
        message: format!(
            "--resume-from stdin was given but stdin carries no {RESUME_DELIMITER} delimiter line"
        ),
    })
}

/// The `shard_worker` binary's whole body: parse flags, read the
/// configuration (and optional resume checkpoint) from stdin, run the
/// shard streaming frames to stdout, act on the outcome. Returns the
/// process exit code; [`WorkerOutput::Hang`] never returns.
///
/// # Errors
/// Returns the exit code and stderr message for flag, policy-name,
/// configuration, resume or simulation errors: an unusable configuration
/// maps to [`EXIT_CONFIG_REJECTED`], a refused resume checkpoint to
/// [`EXIT_RESUME_REJECTED`], everything else to 2.
pub fn worker_main<I>(args: I) -> Result<i32, WorkerExit>
where
    I: IntoIterator<Item = String>,
{
    use std::io::{Read, Write};
    let (spec, policy) = parse_worker_args(args).map_err(WorkerExit::launch)?;
    let factory = factory_by_name(&policy)
        .ok_or_else(|| WorkerExit::launch(format!("unknown policy {policy}")))?;
    let mut stdin_bytes = Vec::new();
    std::io::stdin()
        .read_to_end(&mut stdin_bytes)
        .map_err(|e| {
            WorkerExit::launch(format!("cannot read the shard payload from stdin: {e}"))
        })?;
    let (config_bytes, resume_frame) = split_resume_payload(&stdin_bytes, spec.resume_from_stdin)?;
    let config_text = std::str::from_utf8(config_bytes).map_err(|_| WorkerExit {
        code: EXIT_CONFIG_REJECTED,
        message: "the shard configuration on stdin is not valid UTF-8".to_string(),
    })?;
    let mut stdout = std::io::stdout().lock();
    let worker_pid = std::process::id();
    let shard = spec.shard;
    // Each streamed frame is flushed immediately: the orchestrator's
    // heartbeat deadline measures inter-frame gaps, so a buffered
    // checkpoint would read as a dead worker.
    let mut emit = |frame: &[u8]| {
        stdout
            .write_all(frame)
            .and_then(|()| stdout.flush())
            .map_err(|e| SimError::Io {
                worker: worker_pid,
                shard,
                cause: e.to_string(),
            })
    };
    let output = run_worker(
        &spec,
        config_text,
        resume_frame,
        factory.as_ref(),
        &mut emit,
    )
    .map_err(|e| WorkerExit::classify(&e))?;
    match output {
        WorkerOutput::Frame(frame) => {
            stdout
                .write_all(&frame)
                .and_then(|()| stdout.flush())
                .map_err(|e| WorkerExit::launch(format!("cannot write the report frame: {e}")))?;
            Ok(0)
        }
        WorkerOutput::Exit(code) => Ok(code),
        WorkerOutput::Hang => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
}

/// Options of the `orchestrate` binary.
#[derive(Debug, Clone, PartialEq)]
pub struct OrchestrateOptions {
    /// Worker process count `k` (the shard count).
    pub processes: usize,
    /// Policy name.
    pub policy: String,
    /// Smoke-test-sized run (16×4 system, 400 rounds).
    pub quick: bool,
    /// Rounds override.
    pub rounds: Option<u64>,
    /// Master seed.
    pub seed: u64,
    /// Heartbeat deadline in milliseconds (per-attempt wall clock when
    /// checkpoints are off).
    pub timeout_ms: u64,
    /// Retries per shard after the first attempt.
    pub retries: u32,
    /// Stream a progress/checkpoint frame pair every this many rounds
    /// (0 = legacy one-shot protocol; failed shards restart from seed).
    pub checkpoint_every: u64,
    /// Shards whose first attempt is killed by an injected crash.
    pub inject_crash: Vec<usize>,
    /// Shards whose first attempt crashes right after streaming its first
    /// checkpoint — the retry-from-checkpoint path.
    pub inject_crash_after_checkpoint: Vec<usize>,
    /// Shards whose first attempt is an injected hang (killed by timeout).
    pub inject_hang: Vec<usize>,
    /// Shards whose first attempt emits a corrupted frame.
    pub inject_corrupt: Vec<usize>,
    /// Make the injected faults fire on *every* attempt (exhausts retries
    /// and forces the partial merge).
    pub persistent: bool,
    /// Re-run the same configuration on the in-process sharded engine and
    /// fail unless the merged reports are identical.
    pub verify_inprocess: bool,
    /// Explicit worker binary path (default: next to this binary).
    pub worker: Option<PathBuf>,
}

impl Default for OrchestrateOptions {
    fn default() -> Self {
        OrchestrateOptions {
            processes: 4,
            policy: "SCD".into(),
            quick: false,
            rounds: None,
            seed: 2021,
            timeout_ms: 60_000,
            retries: 2,
            checkpoint_every: 0,
            inject_crash: Vec::new(),
            inject_crash_after_checkpoint: Vec::new(),
            inject_hang: Vec::new(),
            inject_corrupt: Vec::new(),
            persistent: false,
            verify_inprocess: false,
            worker: None,
        }
    }
}

/// The `orchestrate` binary's usage string.
pub fn orchestrate_usage() -> String {
    "usage: orchestrate [--processes K] [--policy NAME] [--rounds N] [--seed S] \
     [--timeout-ms MS] [--retries R] [--checkpoint-every ROUNDS] [--inject-crash SHARD]* \
     [--inject-crash-after-checkpoint SHARD]* [--inject-hang SHARD]* \
     [--inject-corrupt SHARD]* [--persistent] [--verify-inprocess] [--worker PATH] \
     [--quick]"
        .to_string()
}

impl OrchestrateOptions {
    /// Parses the `orchestrate` flag set.
    ///
    /// # Errors
    /// Returns a human-readable message (or the usage string for
    /// `--help`) on unknown flags and malformed values.
    pub fn parse<I>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut options = OrchestrateOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut value_of = |flag: &str| {
                iter.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            let parse_shard = |flag: &str, v: String| {
                v.parse::<usize>()
                    .map_err(|_| format!("invalid {flag} value: {v}"))
            };
            match arg.as_str() {
                "--processes" => {
                    let v = value_of("--processes")?;
                    let parsed = v
                        .parse::<usize>()
                        .map_err(|_| format!("invalid --processes value: {v}"))?;
                    if parsed == 0 {
                        return Err("--processes must be at least 1".into());
                    }
                    options.processes = parsed;
                }
                "--policy" => options.policy = value_of("--policy")?,
                "--rounds" => {
                    let v = value_of("--rounds")?;
                    options.rounds = Some(
                        v.parse()
                            .map_err(|_| format!("invalid --rounds value: {v}"))?,
                    );
                }
                "--seed" => {
                    let v = value_of("--seed")?;
                    options.seed = v
                        .parse()
                        .map_err(|_| format!("invalid --seed value: {v}"))?;
                }
                "--timeout-ms" => {
                    let v = value_of("--timeout-ms")?;
                    options.timeout_ms = v
                        .parse()
                        .map_err(|_| format!("invalid --timeout-ms value: {v}"))?;
                }
                "--retries" => {
                    let v = value_of("--retries")?;
                    options.retries = v
                        .parse()
                        .map_err(|_| format!("invalid --retries value: {v}"))?;
                }
                "--checkpoint-every" => {
                    let v = value_of("--checkpoint-every")?;
                    options.checkpoint_every = v
                        .parse()
                        .map_err(|_| format!("invalid --checkpoint-every value: {v}"))?;
                }
                "--inject-crash" => {
                    let v = value_of("--inject-crash")?;
                    options.inject_crash.push(parse_shard("--inject-crash", v)?);
                }
                "--inject-crash-after-checkpoint" => {
                    let v = value_of("--inject-crash-after-checkpoint")?;
                    options
                        .inject_crash_after_checkpoint
                        .push(parse_shard("--inject-crash-after-checkpoint", v)?);
                }
                "--inject-hang" => {
                    let v = value_of("--inject-hang")?;
                    options.inject_hang.push(parse_shard("--inject-hang", v)?);
                }
                "--inject-corrupt" => {
                    let v = value_of("--inject-corrupt")?;
                    options
                        .inject_corrupt
                        .push(parse_shard("--inject-corrupt", v)?);
                }
                "--persistent" => options.persistent = true,
                "--verify-inprocess" => options.verify_inprocess = true,
                "--worker" => options.worker = Some(PathBuf::from(value_of("--worker")?)),
                "--quick" => options.quick = true,
                "--help" | "-h" => return Err(orchestrate_usage()),
                other => return Err(format!("unknown flag {other}\n{}", orchestrate_usage())),
            }
        }
        if !options.inject_crash_after_checkpoint.is_empty() && options.checkpoint_every == 0 {
            return Err(
                "--inject-crash-after-checkpoint requires --checkpoint-every > 0 \
                 (no checkpoint ever streams otherwise, so the fault would never fire)"
                    .into(),
            );
        }
        Ok(options)
    }

    /// The experiment configuration this invocation orchestrates: the
    /// sweep's `paper_moderate` cluster draw at offered load 0.9, sized
    /// 16×4/400 rounds under `--quick` and 64×8/4000 rounds otherwise.
    ///
    /// # Errors
    /// Propagates configuration validation errors as messages.
    pub fn config(&self) -> Result<SimConfig, String> {
        let (n, m, rounds) = if self.quick {
            (16, 4, 400)
        } else {
            (64, 8, 4_000)
        };
        let rounds = self.rounds.unwrap_or(rounds);
        let cluster = cluster_for_system(&RateProfile::paper_moderate(), n, self.seed, 0);
        SimConfig::builder(cluster)
            .dispatchers(m)
            .rounds(rounds)
            .warmup_rounds(rounds / 10)
            .seed(self.seed)
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
            .build()
            .map_err(|e| e.to_string())
    }

    /// The fabric spec this invocation supervises with.
    ///
    /// # Errors
    /// Propagates worker-location errors as messages.
    pub fn fabric_spec(&self) -> Result<FabricSpec, String> {
        let worker = match &self.worker {
            Some(path) => path.clone(),
            None => worker_binary_path()?,
        };
        let mut spec = FabricSpec::new(worker, self.policy.clone(), self.processes);
        spec.max_retries = self.retries;
        spec.timeout = Duration::from_millis(self.timeout_ms);
        spec.checkpoint_every = self.checkpoint_every;
        let inject = |shards: &[usize], fault: WorkerFaultPlan| {
            shards
                .iter()
                .map(|&shard| InjectedFault {
                    shard,
                    fault: fault.clone(),
                    persistent: self.persistent,
                })
                .collect::<Vec<_>>()
        };
        spec.injected.extend(inject(
            &self.inject_crash,
            WorkerFaultPlan {
                fail_after_round: Some(0),
                ..WorkerFaultPlan::default()
            },
        ));
        spec.injected.extend(inject(
            &self.inject_crash_after_checkpoint,
            WorkerFaultPlan {
                fail_after_checkpoint: Some(1),
                ..WorkerFaultPlan::default()
            },
        ));
        spec.injected.extend(inject(
            &self.inject_hang,
            WorkerFaultPlan {
                hang: true,
                ..WorkerFaultPlan::default()
            },
        ));
        spec.injected.extend(inject(
            &self.inject_corrupt,
            WorkerFaultPlan {
                corrupt_frame: true,
                ..WorkerFaultPlan::default()
            },
        ));
        Ok(spec)
    }
}

/// The `orchestrate` binary's entry point: build the configuration and
/// fabric spec, run, report, optionally verify against the in-process
/// engine.
///
/// # Errors
/// Returns a message when the fabric run fails outright (every shard
/// lost), the policy is unknown, or `--verify-inprocess` finds a
/// divergence.
pub fn run_orchestrate(options: &OrchestrateOptions) -> Result<(), String> {
    if factory_by_name(&options.policy).is_none() {
        return Err(format!("unknown policy {}", options.policy));
    }
    let config = options.config()?;
    let spec = options.fabric_spec()?;
    println!(
        "[orchestrate] k={} policy={} rounds={} seed={} retries={} timeout={}ms \
         checkpoint-every={} worker={}",
        spec.num_shards,
        spec.policy,
        config.rounds,
        config.seed,
        spec.max_retries,
        options.timeout_ms,
        spec.checkpoint_every,
        spec.worker.display()
    );
    let outcome = run_fabric(&config, &spec).map_err(|e| e.to_string())?;
    for attempt in &outcome.attempts {
        match &attempt.failure {
            None if attempt.attempt == 0 => {}
            None => println!(
                "[orchestrate] shard {} recovered on attempt {}",
                attempt.shard, attempt.attempt
            ),
            Some(failure) => println!(
                "[orchestrate] shard {} attempt {} failed: {failure}",
                attempt.shard, attempt.attempt
            ),
        }
    }
    if spec.checkpoint_every > 0 {
        println!(
            "[orchestrate] recovery: checkpoints_taken={} rounds_replayed={}",
            outcome.checkpoints_taken, outcome.rounds_replayed
        );
    }
    if outcome.lost_shards.is_empty() {
        println!("[orchestrate] all {} shards merged", spec.num_shards);
    } else {
        println!(
            "[orchestrate] PARTIAL merge: lost shards {:?} ({} of {})",
            outcome.lost_shards,
            outcome.lost_shards.len(),
            spec.num_shards
        );
    }
    println!("{}", outcome.report.one_liner());
    if options.verify_inprocess {
        let factory = factory_by_name(&options.policy).expect("checked above");
        let in_process = ShardedSimulation::new(config, options.processes)
            .map_err(|e| e.to_string())?
            .run(factory.as_ref())
            .map_err(|e| e.to_string())?;
        if !outcome.lost_shards.is_empty() {
            return Err(format!(
                "--verify-inprocess requires a complete merge, but shards {:?} were lost",
                outcome.lost_shards
            ));
        }
        if outcome.report != in_process {
            return Err("orchestrated report DIVERGES from the in-process sharded run".to_string());
        }
        println!("[orchestrate] verified: bit-identical to the in-process sharded run");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<OrchestrateOptions, String> {
        OrchestrateOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn worker_args_round_trip_through_the_fault_plan() {
        let fault = WorkerFaultPlan {
            fail_after_round: Some(9),
            fail_after_checkpoint: Some(2),
            corrupt_frame: true,
            ..WorkerFaultPlan::default()
        };
        let mut args = vec![
            "--shard".to_string(),
            "2".to_string(),
            "--shards".to_string(),
            "4".to_string(),
            "--policy".to_string(),
            "SCD".to_string(),
            "--expect-seed".to_string(),
            "77".to_string(),
            "--digest".to_string(),
            "12345".to_string(),
            "--checkpoint-every".to_string(),
            "50".to_string(),
            "--resume-from".to_string(),
            "stdin".to_string(),
        ];
        args.extend(fault.to_args());
        let (spec, policy) = parse_worker_args(args).unwrap();
        assert_eq!(policy, "SCD");
        assert_eq!(spec.shard, 2);
        assert_eq!(spec.num_shards, 4);
        assert_eq!(spec.expect_seed, 77);
        assert_eq!(spec.config_digest, 12345);
        assert_eq!(spec.checkpoint_every, 50);
        assert!(spec.resume_from_stdin);
        assert_eq!(spec.fault, fault);
    }

    #[test]
    fn worker_args_reject_missing_and_unknown_flags() {
        assert!(parse_worker_args(vec!["--shard".into()]).is_err());
        assert!(parse_worker_args(vec!["--wat".into()]).is_err());
        let err = parse_worker_args(vec!["--shard".into(), "0".into()]).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        // Only the stdin resume channel exists.
        let err = parse_worker_args(vec!["--resume-from".into(), "file.bin".into()]).unwrap_err();
        assert!(err.contains("stdin"), "{err}");
    }

    #[test]
    fn resume_payload_splits_at_the_delimiter_line() {
        let config = b"rounds = 10\nseed = 7\n";
        let frame = [0xABu8, 0xCD, 0x00, b'\n', b'%'];
        let mut stdin = Vec::new();
        stdin.extend_from_slice(config);
        stdin.extend_from_slice(format!("{RESUME_DELIMITER}\n").as_bytes());
        stdin.extend_from_slice(&frame);
        let (text, resume) = split_resume_payload(&stdin, true).unwrap();
        assert_eq!(text, config);
        assert_eq!(resume, Some(&frame[..]));
        // Without the resume flag the same bytes are all configuration.
        let (text, resume) = split_resume_payload(&stdin, false).unwrap();
        assert_eq!(text, &stdin[..]);
        assert!(resume.is_none());
        // A resume request without a delimiter is refused with the
        // protocol's resume-rejected exit code.
        let err = split_resume_payload(config, true).unwrap_err();
        assert_eq!(err.code, EXIT_RESUME_REJECTED);
        // A delimiter in the middle of a line does not count.
        let glued = format!("key = {RESUME_DELIMITER}\n");
        let err = split_resume_payload(glued.as_bytes(), true).unwrap_err();
        assert_eq!(err.code, EXIT_RESUME_REJECTED);
    }

    #[test]
    fn orchestrate_options_parse_and_validate() {
        let options = parse(&[
            "--processes",
            "4",
            "--policy",
            "JSQ",
            "--rounds",
            "200",
            "--seed",
            "5",
            "--timeout-ms",
            "2500",
            "--retries",
            "3",
            "--checkpoint-every",
            "25",
            "--inject-crash",
            "1",
            "--inject-crash-after-checkpoint",
            "3",
            "--inject-hang",
            "2",
            "--inject-corrupt",
            "0",
            "--persistent",
            "--verify-inprocess",
            "--worker",
            "/tmp/worker",
            "--quick",
        ])
        .unwrap();
        assert_eq!(options.processes, 4);
        assert_eq!(options.policy, "JSQ");
        assert_eq!(options.rounds, Some(200));
        assert_eq!(options.timeout_ms, 2500);
        assert_eq!(options.retries, 3);
        assert_eq!(options.checkpoint_every, 25);
        assert_eq!(options.inject_crash, vec![1]);
        assert_eq!(options.inject_crash_after_checkpoint, vec![3]);
        assert_eq!(options.inject_hang, vec![2]);
        assert_eq!(options.inject_corrupt, vec![0]);
        assert!(options.persistent && options.verify_inprocess && options.quick);
        assert_eq!(options.worker, Some(PathBuf::from("/tmp/worker")));
        assert!(parse(&["--processes", "0"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
        // A checkpoint-crash injection without checkpoint streaming would
        // never fire — refuse the contradiction up front.
        assert!(parse(&["--inject-crash-after-checkpoint", "1"]).is_err());
    }

    #[test]
    fn fabric_spec_translates_injections() {
        let options = parse(&[
            "--quick",
            "--worker",
            "/tmp/worker",
            "--checkpoint-every",
            "40",
            "--inject-crash",
            "1",
            "--inject-crash-after-checkpoint",
            "0",
            "--inject-hang",
            "2",
        ])
        .unwrap();
        let spec = options.fabric_spec().unwrap();
        assert_eq!(spec.checkpoint_every, 40);
        assert_eq!(spec.injected.len(), 3);
        assert_eq!(spec.injected[0].shard, 1);
        assert_eq!(spec.injected[0].fault.fail_after_round, Some(0));
        assert!(!spec.injected[0].persistent);
        assert_eq!(spec.injected[1].shard, 0);
        assert_eq!(spec.injected[1].fault.fail_after_checkpoint, Some(1));
        assert_eq!(spec.injected[2].shard, 2);
        assert!(spec.injected[2].fault.hang);
        // The config is a valid quick-sized system.
        let config = options.config().unwrap();
        assert_eq!(config.num_servers(), 16);
        assert_eq!(config.num_dispatchers, 4);
        assert_eq!(config.rounds, 400);
    }
}
