//! End-to-end tests of the multi-process shard fabric, on real OS
//! processes.
//!
//! Everything below spawns the actual `shard_worker` binary (resolved via
//! the `CARGO_BIN_EXE_shard_worker` env var Cargo sets for integration
//! tests) and drives it through the orchestrator: the headline
//! retry-from-seed bit-identity, exhausted retries degrading to a partial
//! merge, and timeout/corruption classification on the process boundary.

use scd_policies::factory_by_name;
use scd_sim::fabric::{
    encode_shard_report, run_fabric, FabricSpec, InjectedFault, WorkerFailure, WorkerFaultPlan,
    EXIT_CONFIG_REJECTED, EXIT_RESUME_REJECTED,
};
use scd_sim::{ArrivalSpec, ShardedSimulation, SimConfig};
use std::path::PathBuf;
use std::time::Duration;

const POLICY: &str = "JSQ";

fn worker() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_shard_worker"))
}

fn base_config(rounds: u64) -> SimConfig {
    let rates: Vec<f64> = (0..8).map(|s| 1.0 + (s % 3) as f64).collect();
    SimConfig::builder(scd_model::ClusterSpec::from_rates(rates).unwrap())
        .dispatchers(4)
        .rounds(rounds)
        .warmup_rounds(rounds / 10)
        .seed(2021)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.85 })
        .build()
        .unwrap()
}

fn quick_spec(k: usize) -> FabricSpec {
    let mut spec = FabricSpec::new(worker(), POLICY, k);
    spec.backoff_base = Duration::from_millis(5);
    spec.backoff_cap = Duration::from_millis(20);
    spec
}

fn in_process(config: &SimConfig, k: usize) -> scd_sim::SimReport {
    ShardedSimulation::new(config.clone(), k)
        .unwrap()
        .run(factory_by_name(POLICY).unwrap().as_ref())
        .unwrap()
}

fn crash() -> WorkerFaultPlan {
    WorkerFaultPlan {
        fail_after_round: Some(0),
        ..WorkerFaultPlan::default()
    }
}

/// The headline invariant: an orchestrated k=4 run that suffered one
/// injected crash, retried from its seed, is **bit-identical** to the
/// in-process `ShardedSimulation` at k=4.
#[test]
fn crash_retried_from_seed_is_bit_identical_to_in_process() {
    let config = base_config(150);
    let mut spec = quick_spec(4);
    spec.injected.push(InjectedFault {
        shard: 1,
        fault: crash(),
        persistent: false,
    });
    let outcome = run_fabric(&config, &spec).unwrap();
    assert!(outcome.lost_shards.is_empty(), "{:?}", outcome.lost_shards);
    // The crash was observed and classified...
    let failed: Vec<_> = outcome
        .attempts
        .iter()
        .filter(|a| a.failure.is_some())
        .collect();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].shard, 1);
    assert_eq!(failed[0].attempt, 0);
    assert!(matches!(
        failed[0].failure,
        Some(WorkerFailure::NonZeroExit(Some(101)))
    ));
    // ...the retry succeeded...
    assert!(outcome
        .attempts
        .iter()
        .any(|a| a.shard == 1 && a.attempt == 1 && a.failure.is_none()));
    // ...and recovery left no trace in the merged statistics.
    let reference = in_process(&config, 4);
    assert_eq!(outcome.report, reference);
    assert!(outcome.report.degradation.is_none(), "clean merge");
}

/// A clean orchestrated run (no faults at all) is equally bit-identical —
/// the trivial corollary, pinned separately so a regression in the happy
/// path is not misattributed to retry logic.
#[test]
fn clean_run_matches_in_process_at_k2() {
    let config = base_config(120);
    let outcome = run_fabric(&config, &quick_spec(2)).unwrap();
    assert!(outcome.lost_shards.is_empty());
    assert!(outcome.attempts.iter().all(|a| a.failure.is_none()));
    assert_eq!(outcome.report, in_process(&config, 2));
}

/// A persistently crashing shard exhausts its retries and the run degrades
/// to a partial merge with explicit loss accounting.
#[test]
fn exhausted_retries_degrade_to_a_partial_merge() {
    let config = base_config(150);
    let rounds = config.rounds;
    let mut spec = quick_spec(4);
    spec.max_retries = 1;
    spec.injected.push(InjectedFault {
        shard: 2,
        fault: crash(),
        persistent: true,
    });
    let outcome = run_fabric(&config, &spec).unwrap();
    assert_eq!(outcome.lost_shards, vec![2]);
    // Initial attempt + 1 retry, both failed.
    let shard2: Vec<_> = outcome.attempts.iter().filter(|a| a.shard == 2).collect();
    assert_eq!(shard2.len(), 2);
    assert!(shard2.iter().all(|a| a.failure.is_some()));
    let degradation = outcome
        .report
        .degradation
        .expect("partial merges account losses");
    assert_eq!(degradation.shards_lost, 1);
    assert_eq!(degradation.rounds_lost, rounds);
    // The surviving statistics are exactly the other shards' in-process
    // reports merged — not resynthesized, not rescaled.
    let reference = in_process(&config, 4);
    assert!(outcome.report.jobs_dispatched < reference.jobs_dispatched);
}

/// A hung worker is killed by the wall-clock timeout, classified as such,
/// and its retry still restores bit-identity.
#[test]
fn hang_is_classified_as_timeout_and_recovered() {
    let config = base_config(100);
    let mut spec = quick_spec(2);
    spec.timeout = Duration::from_secs(2);
    spec.injected.push(InjectedFault {
        shard: 0,
        fault: WorkerFaultPlan {
            hang: true,
            ..WorkerFaultPlan::default()
        },
        persistent: false,
    });
    let outcome = run_fabric(&config, &spec).unwrap();
    assert!(outcome.lost_shards.is_empty());
    assert!(outcome
        .attempts
        .iter()
        .any(|a| a.shard == 0 && matches!(a.failure, Some(WorkerFailure::Timeout))));
    assert_eq!(outcome.report, in_process(&config, 2));
}

/// A corrupted frame is caught by the checksum (classified as a frame
/// rejection, not an exit failure) and retried into a clean merge.
#[test]
fn corrupt_frame_is_rejected_by_checksum_and_recovered() {
    let config = base_config(100);
    let mut spec = quick_spec(2);
    spec.injected.push(InjectedFault {
        shard: 1,
        fault: WorkerFaultPlan {
            corrupt_frame: true,
            ..WorkerFaultPlan::default()
        },
        persistent: false,
    });
    let outcome = run_fabric(&config, &spec).unwrap();
    assert!(outcome.lost_shards.is_empty());
    assert!(outcome.attempts.iter().any(|a| a.shard == 1
        && matches!(
            &a.failure,
            Some(WorkerFailure::Frame(
                scd_sim::CodecError::ChecksumMismatch { .. }
            ))
        )));
    assert_eq!(outcome.report, in_process(&config, 2));
}

/// The checkpoint/resume invariant: a k=4 run whose shard crashes
/// mid-stream right after its second checkpoint, restarted **from that
/// checkpoint**, is bit-identical to the in-process `ShardedSimulation` —
/// and replays zero rounds, because the crash site and the resume point
/// coincide.
#[test]
fn crash_after_checkpoint_resumes_bit_identically() {
    let config = base_config(150);
    let mut spec = quick_spec(4);
    spec.checkpoint_every = 25;
    spec.injected.push(InjectedFault {
        shard: 1,
        fault: WorkerFaultPlan {
            fail_after_checkpoint: Some(2),
            ..WorkerFaultPlan::default()
        },
        persistent: false,
    });
    let outcome = run_fabric(&config, &spec).unwrap();
    assert!(outcome.lost_shards.is_empty(), "{:?}", outcome.lost_shards);
    // The mid-stream crash was observed and classified as the injected
    // exit...
    assert!(outcome.attempts.iter().any(|a| a.shard == 1
        && a.attempt == 0
        && matches!(a.failure, Some(WorkerFailure::NonZeroExit(Some(101))))));
    // ...the retry succeeded...
    assert!(outcome
        .attempts
        .iter()
        .any(|a| a.shard == 1 && a.attempt == 1 && a.failure.is_none()));
    // ...checkpoints streamed, and resuming exactly at the last verified
    // one re-executed nothing.
    assert!(outcome.checkpoints_taken > 0, "checkpoints streamed");
    assert_eq!(outcome.rounds_replayed, 0, "resume point == crash site");
    // Recovery left no trace in the merged statistics.
    assert_eq!(outcome.report, in_process(&config, 4));
    assert!(outcome.report.degradation.is_none(), "clean merge");
}

/// A checkpointing run with no faults is also bit-identical: streaming
/// progress/checkpoint pairs must not perturb the simulation itself.
#[test]
fn clean_checkpointing_run_matches_in_process() {
    let config = base_config(120);
    let mut spec = quick_spec(2);
    spec.checkpoint_every = 30;
    let outcome = run_fabric(&config, &spec).unwrap();
    assert!(outcome.lost_shards.is_empty());
    assert!(outcome.attempts.iter().all(|a| a.failure.is_none()));
    assert!(outcome.checkpoints_taken > 0);
    assert_eq!(outcome.rounds_replayed, 0);
    assert_eq!(outcome.report, in_process(&config, 2));
}

/// Exit code 3 (configuration rejected) is fatal for the shard: the
/// orchestrator must not retry a config that can never work. The fault is
/// injected non-persistently, so a retry *would* have succeeded — the
/// shard being lost proves no retry was launched.
#[test]
fn config_rejected_exit_is_not_retried() {
    let config = base_config(100);
    let mut spec = quick_spec(2);
    spec.max_retries = 3;
    spec.injected.push(InjectedFault {
        shard: 0,
        fault: WorkerFaultPlan {
            exit_code: Some(EXIT_CONFIG_REJECTED),
            ..WorkerFaultPlan::default()
        },
        persistent: false,
    });
    let outcome = run_fabric(&config, &spec).unwrap();
    assert_eq!(outcome.lost_shards, vec![0]);
    let shard0: Vec<_> = outcome.attempts.iter().filter(|a| a.shard == 0).collect();
    assert_eq!(shard0.len(), 1, "exactly one attempt, no retries");
    assert!(matches!(
        shard0[0].failure,
        Some(WorkerFailure::NonZeroExit(Some(EXIT_CONFIG_REJECTED)))
    ));
    let degradation = outcome.report.degradation.expect("partial merge");
    assert_eq!(degradation.shards_lost, 1);
}

/// `--checkpoint-every 0` (the default) reconstructs the legacy one-shot
/// protocol **byte-for-byte**: the worker's entire stdout is exactly the
/// v2 frame of its shard report, so PR 8 orchestrators and PR 10 workers
/// interoperate.
#[test]
fn legacy_mode_reproduces_the_v2_wire_protocol_byte_for_byte() {
    use std::io::Write;
    let config = base_config(120);
    let k = 2;
    let sharded = ShardedSimulation::new(config.clone(), k).unwrap();
    let expected = sharded
        .run_shards(factory_by_name(POLICY).unwrap().as_ref(), 1)
        .unwrap();
    for (shard, expected_report) in expected.iter().enumerate() {
        let sub = sharded.shard_config(shard);
        let mut child = std::process::Command::new(worker())
            .args([
                "--shard",
                &shard.to_string(),
                "--shards",
                &k.to_string(),
                "--policy",
                POLICY,
                "--expect-seed",
                &sub.seed.to_string(),
                "--digest",
                &config.digest().to_string(),
            ])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        child
            .stdin
            .take()
            .unwrap()
            .write_all(sub.to_key_values().unwrap().as_bytes())
            .unwrap();
        let output = child.wait_with_output().unwrap();
        assert!(output.status.success());
        assert_eq!(
            output.stdout,
            encode_shard_report(expected_report).unwrap(),
            "shard {shard}: legacy stdout is not the exact v2 frame"
        );
    }
}

/// The worker's protocol exit codes on the real process boundary: garbage
/// configuration text exits 3, a resume request without the checkpoint
/// delimiter exits 4.
#[test]
fn worker_binary_exit_codes_classify_bad_stdin() {
    use std::io::Write;
    let spawn = |extra: &[&str], stdin_text: &str| {
        let mut child = std::process::Command::new(worker())
            .args([
                "--shard",
                "0",
                "--shards",
                "1",
                "--policy",
                POLICY,
                "--expect-seed",
                "1",
                "--digest",
                "1",
            ])
            .args(extra)
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        child
            .stdin
            .take()
            .unwrap()
            .write_all(stdin_text.as_bytes())
            .unwrap();
        child.wait_with_output().unwrap()
    };
    let garbage = spawn(&[], "this is not a configuration\n");
    assert_eq!(garbage.status.code(), Some(EXIT_CONFIG_REJECTED));
    let no_delimiter = spawn(&["--resume-from", "stdin"], "rounds = 10\n");
    assert_eq!(no_delimiter.status.code(), Some(EXIT_RESUME_REJECTED));
}

/// The `orchestrate` binary end to end: clean run and injected-fault run,
/// both `--verify-inprocess` (the CI smoke job runs the same commands).
#[test]
fn orchestrate_binary_verifies_against_the_in_process_engine() {
    let orchestrate = env!("CARGO_BIN_EXE_orchestrate");
    let run = |extra: &[&str]| {
        let mut cmd = std::process::Command::new(orchestrate);
        cmd.args([
            "--processes",
            "4",
            "--quick",
            "--rounds",
            "120",
            "--verify-inprocess",
            "--worker",
        ])
        .arg(env!("CARGO_BIN_EXE_shard_worker"))
        .args(extra);
        cmd.output().expect("orchestrate binary runs")
    };
    let clean = run(&[]);
    assert!(
        clean.status.success(),
        "clean orchestrate failed:\n{}{}",
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&clean.stderr)
    );
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(stdout.contains("bit-identical"), "{stdout}");

    let faulty = run(&[
        "--inject-crash",
        "1",
        "--inject-hang",
        "2",
        "--timeout-ms",
        "2000",
    ]);
    assert!(
        faulty.status.success(),
        "faulty orchestrate failed:\n{}{}",
        String::from_utf8_lossy(&faulty.stdout),
        String::from_utf8_lossy(&faulty.stderr)
    );
    let stdout = String::from_utf8_lossy(&faulty.stdout);
    assert!(stdout.contains("recovered"), "{stdout}");
    assert!(stdout.contains("bit-identical"), "{stdout}");

    // The kill-mid-run smoke: a checkpoint-streaming run whose shard dies
    // right after its first checkpoint, resumed from it, still verifies.
    let resumed = run(&[
        "--checkpoint-every",
        "25",
        "--inject-crash-after-checkpoint",
        "1",
    ]);
    assert!(
        resumed.status.success(),
        "checkpoint-resume orchestrate failed:\n{}{}",
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(stdout.contains("recovered"), "{stdout}");
    assert!(stdout.contains("checkpoints_taken"), "{stdout}");
    assert!(stdout.contains("bit-identical"), "{stdout}");
}
